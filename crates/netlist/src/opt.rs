//! Netlist cleanup: constant folding, algebraic simplification and
//! dead-code elimination.
//!
//! Run before technology mapping so degenerate structures (muxes with
//! constant legs from ROM lowering, XORs with zero, duplicated operands)
//! do not inflate the logic-cell count the flow reports.

use std::collections::HashMap;

use crate::ir::{Cell, CellKind, NetId, Netlist};

/// Result of [`optimize`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OptReport {
    /// Cells in the input netlist.
    pub cells_before: usize,
    /// Cells after folding + DCE.
    pub cells_after: usize,
    /// Folding rewrites applied.
    pub folds: usize,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Value {
    /// Known constant.
    Const(bool),
    /// Same value as another net.
    Alias(NetId),
    /// Complement of another net.
    InvAlias(NetId),
    /// Opaque.
    Unknown,
}

/// Folds constants, simplifies algebraically, removes dead cells, and
/// returns the rewritten netlist (IO names and ROM groups preserved).
///
/// # Examples
///
/// ```
/// use netlist::ir::Netlist;
/// use netlist::opt::optimize;
///
/// let mut nl = Netlist::new("fold");
/// let a = nl.input("a");
/// let zero = nl.constant(false);
/// let x = nl.xor2(a, zero); // == a
/// nl.output("x", x);
/// let (folded, report) = optimize(&nl);
/// assert_eq!(folded.stats().gates, 0); // the xor dissolved into a wire
/// assert!(report.folds >= 1);
/// ```
#[must_use]
pub fn optimize(netlist: &Netlist) -> (Netlist, OptReport) {
    let cells = netlist.cells();
    let mut report = OptReport {
        cells_before: cells.len(),
        ..Default::default()
    };

    // ------------------------------------------------------------------
    // Pass 1: forward value analysis. `value[i]` describes what cell i's
    // output really is after simplification.
    // ------------------------------------------------------------------
    let mut value = vec![Value::Unknown; cells.len()];

    // Resolve a net through alias chains to (net, inverted, const).
    fn resolve(value: &[Value], mut n: NetId) -> (NetId, bool, Option<bool>) {
        let mut inv = false;
        loop {
            match value[n.idx()] {
                Value::Const(c) => return (n, false, Some(c ^ inv)),
                Value::Alias(m) => n = m,
                Value::InvAlias(m) => {
                    inv = !inv;
                    n = m;
                }
                Value::Unknown => return (n, inv, None),
            }
        }
    }

    for (i, cell) in cells.iter().enumerate() {
        let _id = NetId(i as u32);
        let v = match &cell.kind {
            CellKind::Const(c) => Value::Const(*c),
            CellKind::Not => {
                let (n, inv, c) = resolve(&value, cell.inputs[0]);
                match c {
                    Some(c) => Value::Const(!c),
                    None if inv => Value::Alias(n),
                    None => Value::InvAlias(n),
                }
            }
            CellKind::And2 | CellKind::Or2 | CellKind::Xor2 => {
                let (na, ia, ca) = resolve(&value, cell.inputs[0]);
                let (nb, ib, cb) = resolve(&value, cell.inputs[1]);
                match (&cell.kind, ca, cb) {
                    (CellKind::And2, Some(false), _) | (CellKind::And2, _, Some(false)) => {
                        Value::Const(false)
                    }
                    (CellKind::And2, Some(true), None) => lit(nb, ib),
                    (CellKind::And2, None, Some(true)) => lit(na, ia),
                    (CellKind::And2, Some(true), Some(true)) => Value::Const(true),
                    (CellKind::Or2, Some(true), _) | (CellKind::Or2, _, Some(true)) => {
                        Value::Const(true)
                    }
                    (CellKind::Or2, Some(false), None) => lit(nb, ib),
                    (CellKind::Or2, None, Some(false)) => lit(na, ia),
                    (CellKind::Or2, Some(false), Some(false)) => Value::Const(false),
                    (CellKind::Xor2, Some(a), Some(b)) => Value::Const(a ^ b),
                    (CellKind::Xor2, Some(false), None) => lit(nb, ib),
                    (CellKind::Xor2, None, Some(false)) => lit(na, ia),
                    (CellKind::Xor2, Some(true), None) => lit(nb, !ib),
                    (CellKind::Xor2, None, Some(true)) => lit(na, !ia),
                    _ if na == nb => match &cell.kind {
                        // x & x = x, x & !x = 0; x | x = x, x | !x = 1;
                        // x ^ x = 0, x ^ !x = 1.
                        CellKind::And2 if ia == ib => lit(na, ia),
                        CellKind::And2 => Value::Const(false),
                        CellKind::Or2 if ia == ib => lit(na, ia),
                        CellKind::Or2 => Value::Const(true),
                        CellKind::Xor2 => Value::Const(ia != ib),
                        _ => unreachable!(),
                    },
                    _ => Value::Unknown,
                }
            }
            CellKind::Mux2 => {
                let (ns, is, cs) = resolve(&value, cell.inputs[0]);
                let (na, ia, ca) = resolve(&value, cell.inputs[1]);
                let (nb, ib, cb) = resolve(&value, cell.inputs[2]);
                match cs {
                    Some(true) => cb.map_or_else(|| lit(nb, ib), Value::Const),
                    Some(false) => ca.map_or_else(|| lit(na, ia), Value::Const),
                    None => {
                        if let (Some(cv), true) = (ca, ca == cb) {
                            Value::Const(cv)
                        } else if ca.is_none() && cb.is_none() && na == nb && ia == ib {
                            lit(na, ia)
                        } else if ca == Some(false) && cb == Some(true) {
                            lit(ns, is)
                        } else if ca == Some(true) && cb == Some(false) {
                            lit(ns, !is)
                        } else {
                            Value::Unknown
                        }
                    }
                }
            }
            _ => Value::Unknown,
        };
        if !matches!(v, Value::Unknown) && cell.kind.is_combinational() {
            report.folds += 1;
        }
        value[i] = match &cells[i].kind {
            CellKind::Input | CellKind::Dff | CellKind::RomBit { .. } => Value::Unknown,
            _ => v,
        };
    }

    fn lit(n: NetId, inverted: bool) -> Value {
        if inverted {
            Value::InvAlias(n)
        } else {
            Value::Alias(n)
        }
    }

    // ------------------------------------------------------------------
    // Pass 2: liveness from outputs and live DFF/ROM operands.
    // ------------------------------------------------------------------
    let mut live = vec![false; cells.len()];
    let mut stack: Vec<NetId> = Vec::new();
    let mark = |n: NetId, live: &mut Vec<bool>, stack: &mut Vec<NetId>| {
        let (root, _, c) = resolve(&value, n);
        if c.is_none() && !live[root.idx()] {
            live[root.idx()] = true;
            stack.push(root);
        }
    };
    for out in netlist.outputs() {
        mark(out.net, &mut live, &mut stack);
    }
    while let Some(n) = stack.pop() {
        for &op in &cells[n.idx()].inputs {
            mark(op, &mut live, &mut stack);
        }
    }
    // Keep primary inputs regardless (ports are part of the interface).

    // ------------------------------------------------------------------
    // Pass 3: rebuild.
    // ------------------------------------------------------------------
    let mut out = Netlist::new(netlist.name().to_string());
    let mut remap: HashMap<NetId, NetId> = HashMap::new();
    let mut const_nets: [Option<NetId>; 2] = [None, None];
    let mut get_const = |out: &mut Netlist, c: bool| {
        if let Some(n) = const_nets[usize::from(c)] {
            n
        } else {
            let n = out.constant(c);
            const_nets[usize::from(c)] = Some(n);
            n
        }
    };

    // Inputs first, preserving order/names.
    for pi in netlist.inputs() {
        let new = out.input(pi.name.clone());
        remap.insert(pi.net, new);
    }

    // Lazily materialise nets.
    #[allow(clippy::too_many_arguments)]
    fn materialise(
        n: NetId,
        cells: &[Cell],
        value: &[Value],
        live: &[bool],
        out: &mut Netlist,
        remap: &mut HashMap<NetId, NetId>,
        inv_cache: &mut HashMap<NetId, NetId>,
        pending_dffs: &mut Vec<(NetId, NetId)>,
        get_const: &mut impl FnMut(&mut Netlist, bool) -> NetId,
    ) -> NetId {
        let (root, inv, c) = {
            // Inline resolve to avoid borrow issues.
            let mut m = n;
            let mut inv = false;
            loop {
                match value[m.idx()] {
                    Value::Const(cv) => break (m, false, Some(cv ^ inv)),
                    Value::Alias(x) => m = x,
                    Value::InvAlias(x) => {
                        inv = !inv;
                        m = x;
                    }
                    Value::Unknown => break (m, inv, None),
                }
            }
        };
        if let Some(cv) = c {
            return get_const(out, cv);
        }
        let base = if let Some(&mapped) = remap.get(&root) {
            mapped
        } else if matches!(cells[root.idx()].kind, CellKind::Dff) {
            // Registers are sequential leaves: declare the new flip-flop
            // now, rebuild its data cone later from the top-level
            // worklist. Descending into the cone here would re-enter any
            // combinational cell that sits on a feedback loop through
            // this register while it is still being materialised,
            // duplicating it (the state-register ↔ S-box loop of the AES
            // datapath is exactly that shape).
            let new = out.dff_uninit();
            remap.insert(root, new);
            pending_dffs.push((root, new));
            new
        } else {
            debug_assert!(live[root.idx()] || matches!(cells[root.idx()].kind, CellKind::Input));
            let cell = &cells[root.idx()];
            let ops: Vec<NetId> = cell
                .inputs
                .iter()
                .map(|&op| {
                    materialise(
                        op,
                        cells,
                        value,
                        live,
                        out,
                        remap,
                        inv_cache,
                        pending_dffs,
                        get_const,
                    )
                })
                .collect();
            let cell = &cells[root.idx()];
            let new = match &cell.kind {
                CellKind::Input => unreachable!("inputs pre-mapped"),
                CellKind::Const(cv) => get_const(out, *cv),
                CellKind::Not => out.not(ops[0]),
                CellKind::And2 => out.and2(ops[0], ops[1]),
                CellKind::Or2 => out.or2(ops[0], ops[1]),
                CellKind::Xor2 => out.xor2(ops[0], ops[1]),
                CellKind::Mux2 => out.mux2(ops[0], ops[1], ops[2]),
                CellKind::Dff => unreachable!("handled above"),
                CellKind::RomBit { table, group } => out.rom_bit_raw(table.clone(), *group, ops),
            };
            remap.insert(root, new);
            new
        };
        if inv {
            // One shared inverter per complemented net, however many
            // use sites reference it.
            if let Some(&cached) = inv_cache.get(&base) {
                cached
            } else {
                let n = out.not(base);
                inv_cache.insert(base, n);
                n
            }
        } else {
            base
        }
    }

    let mut inv_cache: HashMap<NetId, NetId> = HashMap::new();
    let mut pending_dffs: Vec<(NetId, NetId)> = Vec::new();

    // Pre-declare every live register in original order so the rewritten
    // netlist keeps a stable register correspondence (the property that
    // lets `verify::check_netlists` pair state positionally, and that
    // real synthesis flows provide by preserving register names).
    for (i, cell) in cells.iter().enumerate() {
        let id = NetId(i as u32);
        if matches!(cell.kind, CellKind::Dff) && live[id.idx()] {
            let new = out.dff_uninit();
            remap.insert(id, new);
            pending_dffs.push((id, new));
        }
    }

    for po in netlist.outputs() {
        let n = materialise(
            po.net,
            cells,
            &value,
            &live,
            &mut out,
            &mut remap,
            &mut inv_cache,
            &mut pending_dffs,
            &mut get_const,
        );
        out.output(po.name.clone(), n);
    }
    // Rebuild register data cones breadth-first; every cycle passes
    // through a register, and all registers are already in `remap`, so no
    // combinational cell can be visited while in flight.
    while let Some((orig_q, new_q)) = pending_dffs.pop() {
        let d = materialise(
            cells[orig_q.idx()].inputs[0],
            cells,
            &value,
            &live,
            &mut out,
            &mut remap,
            &mut inv_cache,
            &mut pending_dffs,
            &mut get_const,
        );
        out.connect_dff(new_q, d);
    }

    report.cells_after = out.cells().len();
    (out, report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap as Map;

    #[test]
    fn xor_with_zero_dissolves() {
        let mut nl = Netlist::new("t");
        let a = nl.input("a");
        let z = nl.constant(false);
        let x = nl.xor2(a, z);
        nl.output("x", x);
        let (o, r) = optimize(&nl);
        assert_eq!(o.stats().gates, 0);
        assert!(r.folds >= 1);
        // Functionality preserved.
        let pa = o.inputs()[0].net;
        let vals = o.evaluate(&Map::from([(pa, true)]), &Map::new());
        assert!(vals[o.outputs()[0].net.idx()]);
    }

    #[test]
    fn xor_with_one_becomes_inverter() {
        let mut nl = Netlist::new("t");
        let a = nl.input("a");
        let one = nl.constant(true);
        let x = nl.xor2(a, one);
        nl.output("x", x);
        let (o, _) = optimize(&nl);
        let pa = o.inputs()[0].net;
        for v in [false, true] {
            let vals = o.evaluate(&Map::from([(pa, v)]), &Map::new());
            assert_eq!(vals[o.outputs()[0].net.idx()], !v);
        }
    }

    #[test]
    fn mux_constant_select_folds() {
        let mut nl = Netlist::new("t");
        let a = nl.input("a");
        let b = nl.input("b");
        let one = nl.constant(true);
        let m = nl.mux2(one, a, b); // sel=1 → b
        nl.output("m", m);
        let (o, _) = optimize(&nl);
        assert_eq!(o.stats().gates, 0);
        let pa = o.inputs()[0].net;
        let pb = o.inputs()[1].net;
        let vals = o.evaluate(&Map::from([(pa, false), (pb, true)]), &Map::new());
        assert!(vals[o.outputs()[0].net.idx()]);
    }

    #[test]
    fn mux_of_constants_becomes_wire_or_inverter() {
        let mut nl = Netlist::new("t");
        let s = nl.input("s");
        let zero = nl.constant(false);
        let one = nl.constant(true);
        let m = nl.mux2(s, zero, one); // == s
        let n = nl.mux2(s, one, zero); // == !s
        nl.output("m", m);
        nl.output("n", n);
        let (o, _) = optimize(&nl);
        assert_eq!(o.stats().gates, 1); // just the inverter
        let ps = o.inputs()[0].net;
        for v in [false, true] {
            let vals = o.evaluate(&Map::from([(ps, v)]), &Map::new());
            assert_eq!(vals[o.outputs()[0].net.idx()], v);
            assert_eq!(vals[o.outputs()[1].net.idx()], !v);
        }
    }

    #[test]
    fn self_cancelling_xor() {
        let mut nl = Netlist::new("t");
        let a = nl.input("a");
        let x = nl.xor2(a, a);
        nl.output("x", x);
        let (o, _) = optimize(&nl);
        assert_eq!(o.stats().gates, 0);
        let pa = o.inputs()[0].net;
        let vals = o.evaluate(&Map::from([(pa, true)]), &Map::new());
        assert!(!vals[o.outputs()[0].net.idx()]);
    }

    #[test]
    fn double_inversion_cancels() {
        let mut nl = Netlist::new("t");
        let a = nl.input("a");
        let n1 = nl.not(a);
        let n2 = nl.not(n1);
        nl.output("y", n2);
        let (o, _) = optimize(&nl);
        assert_eq!(o.stats().gates, 0);
    }

    #[test]
    fn dead_code_removed_live_kept() {
        let mut nl = Netlist::new("t");
        let a = nl.input("a");
        let b = nl.input("b");
        let dead = nl.and2(a, b);
        let _deader = nl.not(dead);
        let live = nl.or2(a, b);
        nl.output("live", live);
        let (o, _) = optimize(&nl);
        assert_eq!(o.stats().gates, 1);
        assert_eq!(o.inputs().len(), 2, "ports survive DCE");
    }

    #[test]
    fn dff_chains_survive() {
        let mut nl = Netlist::new("t");
        let a = nl.input("a");
        let q1 = nl.dff(a);
        let q2 = nl.dff(q1);
        nl.output("q", q2);
        let (o, _) = optimize(&nl);
        assert_eq!(o.stats().dffs, 2);
    }

    #[test]
    fn random_equivalence_after_optimize() {
        // Build a random-ish gate soup and verify functional equivalence.
        let mut nl = Netlist::new("soup");
        let ins: Vec<NetId> = (0..6).map(|i| nl.input(format!("i{i}"))).collect();
        let mut nets = ins.clone();
        let zero = nl.constant(false);
        let one = nl.constant(true);
        nets.push(zero);
        nets.push(one);
        let mut seed = 0x1234_5678u64;
        let mut rng = move || {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            seed
        };
        for _ in 0..80 {
            let a = nets[(rng() as usize) % nets.len()];
            let b = nets[(rng() as usize) % nets.len()];
            let s = nets[(rng() as usize) % nets.len()];
            let n = match rng() % 5 {
                0 => nl.and2(a, b),
                1 => nl.or2(a, b),
                2 => nl.xor2(a, b),
                3 => nl.not(a),
                _ => nl.mux2(s, a, b),
            };
            nets.push(n);
        }
        for (i, &n) in nets.iter().rev().take(5).enumerate() {
            nl.output(format!("o{i}"), n);
        }
        let (o, _) = optimize(&nl);
        assert!(o.cells().len() <= nl.cells().len());

        for pattern in 0u32..64 {
            let iv: Map<NetId, bool> = ins
                .iter()
                .enumerate()
                .map(|(i, &n)| (n, (pattern >> i) & 1 == 1))
                .collect();
            let iv2: Map<NetId, bool> = o
                .inputs()
                .iter()
                .enumerate()
                .map(|(i, p)| (p.net, (pattern >> i) & 1 == 1))
                .collect();
            let va = nl.evaluate(&iv, &Map::new());
            let vb = o.evaluate(&iv2, &Map::new());
            for (pa, pb) in nl.outputs().iter().zip(o.outputs()) {
                assert_eq!(
                    va[pa.net.idx()],
                    vb[pb.net.idx()],
                    "mismatch at pattern {pattern} output {}",
                    pa.name
                );
            }
        }
    }
}

//! The gate-level intermediate representation.
//!
//! A [`Netlist`] is a sea of single-output cells; a cell's output is
//! identified by its [`NetId`] (SSA style: net *is* driver). Sequential
//! elements ([`CellKind::Dff`]) and 256×8 ROM bit-slices
//! ([`CellKind::RomBit`]) break the combinational graph; everything else is
//! 1- or 2-input logic plus the 3-input mux.

use core::fmt;
use std::collections::HashMap;
use std::sync::Arc;

/// Identifies a cell and, equivalently, the net its output drives.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NetId(pub u32);

impl NetId {
    /// The net's index into [`Netlist::cells`] (and into the value vector
    /// returned by [`Netlist::evaluate`]).
    #[inline]
    #[must_use]
    pub fn idx(self) -> usize {
        self.0 as usize
    }
}

/// One S-box output bit: a 256-entry truth table over an 8-bit address.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct RomTable {
    /// 256 bits packed little-endian: bit `a` of the table is
    /// `(words[a / 64] >> (a % 64)) & 1`.
    pub words: [u64; 4],
}

impl RomTable {
    /// Builds the table for output bit `bit` of a 256×8 ROM with the given
    /// byte contents.
    #[must_use]
    pub fn from_contents(contents: &[u8; 256], bit: u32) -> Self {
        let mut words = [0u64; 4];
        for (a, &byte) in contents.iter().enumerate() {
            if (byte >> bit) & 1 == 1 {
                words[a / 64] |= 1u64 << (a % 64);
            }
        }
        RomTable { words }
    }

    /// Looks up address `a`.
    #[inline]
    #[must_use]
    pub fn get(&self, a: u8) -> bool {
        (self.words[usize::from(a) / 64] >> (usize::from(a) % 64)) & 1 == 1
    }
}

impl fmt::Debug for RomTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "RomTable({:016x}{:016x}{:016x}{:016x})",
            self.words[3], self.words[2], self.words[1], self.words[0]
        )
    }
}

/// The cell library.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CellKind {
    /// Primary input (no operands).
    Input,
    /// Constant driver.
    Const(bool),
    /// Inverter: `!a`.
    Not,
    /// 2-input AND.
    And2,
    /// 2-input OR.
    Or2,
    /// 2-input XOR.
    Xor2,
    /// 2:1 multiplexer: operands `[sel, a, b]`, output `sel ? b : a`.
    Mux2,
    /// D flip-flop: operand `[d]`; the cell output is `q`. All DFFs share
    /// the single implicit clock domain (the IP has one `clk` pin).
    Dff,
    /// One output bit of a 256×8 asynchronous ROM; operands are the 8
    /// address bits (LSB first). `group` ties the 8 bit-slices of one
    /// physical S-box together for memory accounting.
    RomBit {
        /// Truth table of this output bit.
        table: Arc<RomTable>,
        /// Physical ROM instance this slice belongs to.
        group: u32,
    },
}

impl CellKind {
    /// Number of operands the kind requires.
    #[must_use]
    pub fn arity(&self) -> usize {
        match self {
            CellKind::Input | CellKind::Const(_) => 0,
            CellKind::Not | CellKind::Dff => 1,
            CellKind::And2 | CellKind::Or2 | CellKind::Xor2 => 2,
            CellKind::Mux2 => 3,
            CellKind::RomBit { .. } => 8,
        }
    }

    /// `true` for purely combinational kinds (mapping fodder).
    #[must_use]
    pub fn is_combinational(&self) -> bool {
        matches!(
            self,
            CellKind::Not | CellKind::And2 | CellKind::Or2 | CellKind::Xor2 | CellKind::Mux2
        )
    }
}

/// A cell instance.
#[derive(Debug, Clone)]
pub struct Cell {
    /// Cell function.
    pub kind: CellKind,
    /// Operand nets; length equals `kind.arity()`.
    pub inputs: Vec<NetId>,
}

/// A named primary output.
#[derive(Debug, Clone)]
pub struct PortBinding {
    /// Port name (bus ports repeat the name with ascending bit index).
    pub name: String,
    /// Driven net.
    pub net: NetId,
}

/// A flat gate-level netlist.
///
/// # Examples
///
/// ```
/// use netlist::ir::Netlist;
///
/// let mut nl = Netlist::new("half_adder");
/// let a = nl.input("a");
/// let b = nl.input("b");
/// let sum = nl.xor2(a, b);
/// let carry = nl.and2(a, b);
/// nl.output("sum", sum);
/// nl.output("carry", carry);
/// assert_eq!(nl.stats().gates, 2);
/// ```
#[derive(Debug, Clone)]
pub struct Netlist {
    name: String,
    cells: Vec<Cell>,
    inputs: Vec<PortBinding>,
    outputs: Vec<PortBinding>,
    next_rom_group: u32,
}

/// Cell-population summary used by reports and tests.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NetlistStats {
    /// Primary inputs.
    pub inputs: usize,
    /// Primary outputs.
    pub outputs: usize,
    /// Combinational gates (NOT/AND/OR/XOR/MUX).
    pub gates: usize,
    /// D flip-flops.
    pub dffs: usize,
    /// Physical 256×8 ROM instances.
    pub roms: usize,
    /// Constant drivers.
    pub consts: usize,
}

impl Netlist {
    /// Creates an empty netlist.
    #[must_use]
    pub fn new(name: impl Into<String>) -> Self {
        Netlist {
            name: name.into(),
            cells: Vec::new(),
            inputs: Vec::new(),
            outputs: Vec::new(),
            next_rom_group: 0,
        }
    }

    /// Design name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    fn push(&mut self, kind: CellKind, inputs: Vec<NetId>) -> NetId {
        debug_assert_eq!(inputs.len(), kind.arity());
        for i in &inputs {
            assert!(
                i.idx() < self.cells.len(),
                "operand {i:?} does not exist yet"
            );
        }
        let id = NetId(u32::try_from(self.cells.len()).expect("netlist too large"));
        self.cells.push(Cell { kind, inputs });
        id
    }

    /// Declares a 1-bit primary input.
    pub fn input(&mut self, name: impl Into<String>) -> NetId {
        let id = self.push(CellKind::Input, vec![]);
        self.inputs.push(PortBinding {
            name: name.into(),
            net: id,
        });
        id
    }

    /// Declares a `width`-bit primary input bus (bit 0 first).
    pub fn input_bus(&mut self, name: &str, width: u32) -> Vec<NetId> {
        (0..width)
            .map(|i| self.input(format!("{name}[{i}]")))
            .collect()
    }

    /// Binds a net to a named primary output.
    pub fn output(&mut self, name: impl Into<String>, net: NetId) {
        assert!(net.idx() < self.cells.len(), "output net does not exist");
        self.outputs.push(PortBinding {
            name: name.into(),
            net,
        });
    }

    /// Binds a bus of nets to numbered outputs.
    pub fn output_bus(&mut self, name: &str, nets: &[NetId]) {
        for (i, &n) in nets.iter().enumerate() {
            self.output(format!("{name}[{i}]"), n);
        }
    }

    /// Constant `0`/`1` driver.
    pub fn constant(&mut self, value: bool) -> NetId {
        self.push(CellKind::Const(value), vec![])
    }

    /// Inverter.
    pub fn not(&mut self, a: NetId) -> NetId {
        self.push(CellKind::Not, vec![a])
    }

    /// 2-input AND.
    pub fn and2(&mut self, a: NetId, b: NetId) -> NetId {
        self.push(CellKind::And2, vec![a, b])
    }

    /// 2-input OR.
    pub fn or2(&mut self, a: NetId, b: NetId) -> NetId {
        self.push(CellKind::Or2, vec![a, b])
    }

    /// 2-input XOR.
    pub fn xor2(&mut self, a: NetId, b: NetId) -> NetId {
        self.push(CellKind::Xor2, vec![a, b])
    }

    /// 2:1 mux (`sel ? b : a`).
    pub fn mux2(&mut self, sel: NetId, a: NetId, b: NetId) -> NetId {
        self.push(CellKind::Mux2, vec![sel, a, b])
    }

    /// D flip-flop; returns `q`.
    pub fn dff(&mut self, d: NetId) -> NetId {
        self.push(CellKind::Dff, vec![d])
    }

    /// Declares a D flip-flop whose `d` input is connected later with
    /// [`Netlist::connect_dff`] — the way register feedback loops (state
    /// machines, accumulators) are described in this SSA-style IR.
    pub fn dff_uninit(&mut self) -> NetId {
        let id = NetId(u32::try_from(self.cells.len()).expect("netlist too large"));
        self.cells.push(Cell {
            kind: CellKind::Dff,
            inputs: vec![],
        });
        id
    }

    /// A word-wide register with deferred inputs.
    pub fn dff_word_uninit(&mut self, width: u32) -> Vec<NetId> {
        (0..width).map(|_| self.dff_uninit()).collect()
    }

    /// Connects the `d` input of a flip-flop created by
    /// [`Netlist::dff_uninit`].
    ///
    /// # Panics
    ///
    /// Panics if `q` is not an unconnected DFF or `d` does not exist.
    pub fn connect_dff(&mut self, q: NetId, d: NetId) {
        assert!(d.idx() < self.cells.len(), "d net does not exist");
        let cell = &mut self.cells[q.idx()];
        assert!(
            matches!(cell.kind, CellKind::Dff) && cell.inputs.is_empty(),
            "connect_dff target must be an unconnected DFF"
        );
        cell.inputs.push(d);
    }

    /// Connects a word register declared with [`Netlist::dff_word_uninit`].
    ///
    /// # Panics
    ///
    /// Panics on width mismatch or invalid targets.
    pub fn connect_dff_word(&mut self, q: &[NetId], d: &[NetId]) {
        assert_eq!(q.len(), d.len(), "register width mismatch");
        for (&qb, &db) in q.iter().zip(d) {
            self.connect_dff(qb, db);
        }
    }

    /// Checks structural sanity: every DFF connected, every operand arity
    /// correct.
    ///
    /// # Panics
    ///
    /// Panics with a diagnostic on the first violation.
    pub fn validate(&self) {
        for (i, cell) in self.cells.iter().enumerate() {
            assert_eq!(
                cell.inputs.len(),
                cell.kind.arity(),
                "cell {i} ({:?}) has {} operands",
                cell.kind,
                cell.inputs.len()
            );
        }
    }

    /// Low-level RomBit constructor used by netlist rewriters; prefer
    /// [`Netlist::rom256x8`] for building designs.
    ///
    /// # Panics
    ///
    /// Panics if `addr.len() != 8`.
    pub fn rom_bit_raw(&mut self, table: Arc<RomTable>, group: u32, addr: Vec<NetId>) -> NetId {
        self.next_rom_group = self.next_rom_group.max(group + 1);
        self.push(CellKind::RomBit { table, group }, addr)
    }

    /// A word-wide register: one DFF per bit.
    pub fn dff_word(&mut self, d: &[NetId]) -> Vec<NetId> {
        d.iter().map(|&b| self.dff(b)).collect()
    }

    /// XOR of two equal-width words.
    ///
    /// # Panics
    ///
    /// Panics on width mismatch.
    pub fn xor_word(&mut self, a: &[NetId], b: &[NetId]) -> Vec<NetId> {
        assert_eq!(a.len(), b.len(), "xor_word width mismatch");
        a.iter().zip(b).map(|(&x, &y)| self.xor2(x, y)).collect()
    }

    /// Word-wide 2:1 mux.
    ///
    /// # Panics
    ///
    /// Panics on width mismatch.
    pub fn mux_word(&mut self, sel: NetId, a: &[NetId], b: &[NetId]) -> Vec<NetId> {
        assert_eq!(a.len(), b.len(), "mux_word width mismatch");
        a.iter()
            .zip(b)
            .map(|(&x, &y)| self.mux2(sel, x, y))
            .collect()
    }

    /// XOR-reduction of several equal-width words (balanced tree).
    ///
    /// # Panics
    ///
    /// Panics if `words` is empty or widths differ.
    pub fn xor_many(&mut self, words: &[Vec<NetId>]) -> Vec<NetId> {
        assert!(!words.is_empty(), "xor_many needs at least one word");
        let mut acc: Vec<Vec<NetId>> = words.to_vec();
        while acc.len() > 1 {
            let mut next = Vec::with_capacity(acc.len().div_ceil(2));
            for pair in acc.chunks(2) {
                match pair {
                    [a, b] => next.push(self.xor_word(a, b)),
                    [a] => next.push(a.clone()),
                    _ => unreachable!(),
                }
            }
            acc = next;
        }
        acc.pop().expect("nonempty")
    }

    /// Instantiates a 256×8 asynchronous ROM (one S-box): 8 `RomBit`
    /// slices sharing a group id. `addr` is 8 bits, LSB first; the result
    /// is 8 data bits, LSB first.
    ///
    /// # Panics
    ///
    /// Panics if `addr.len() != 8`.
    pub fn rom256x8(&mut self, addr: &[NetId], contents: &[u8; 256]) -> Vec<NetId> {
        assert_eq!(addr.len(), 8, "ROM address is 8 bits");
        let group = self.next_rom_group;
        self.next_rom_group += 1;
        (0..8)
            .map(|bit| {
                let table = Arc::new(RomTable::from_contents(contents, bit));
                self.push(CellKind::RomBit { table, group }, addr.to_vec())
            })
            .collect()
    }

    /// Instantiates a 256×8 ROM as a *logic-cell* structure: a shared
    /// Shannon multiplexer tree over the address bits with constant
    /// leaves. This is how the S-boxes must be built on devices whose
    /// embedded memory cannot implement asynchronous ROM — the Cyclone
    /// case the paper's §5 describes ("the memory was implemented using
    /// LCs").
    ///
    /// Identical subtrees are shared (as synthesis would), so the gate
    /// count reflects what a real flow produces.
    ///
    /// # Panics
    ///
    /// Panics if `addr.len() != 8`.
    pub fn rom256x8_lut(&mut self, addr: &[NetId], contents: &[u8; 256]) -> Vec<NetId> {
        assert_eq!(addr.len(), 8, "ROM address is 8 bits");
        // Memoise subtrees by (level, subtable) so equal slices share
        // hardware across output bits.
        let mut memo: HashMap<(u32, Vec<bool>), NetId> = HashMap::new();
        let mut const_nets: [Option<NetId>; 2] = [None, None];
        let mut outs = Vec::with_capacity(8);
        for bit in 0..8u32 {
            let table: Vec<bool> = (0..256).map(|a| (contents[a] >> bit) & 1 == 1).collect();
            let n = self.shannon_tree(addr, &table, 8, &mut memo, &mut const_nets);
            outs.push(n);
        }
        outs
    }

    fn shannon_tree(
        &mut self,
        addr: &[NetId],
        table: &[bool],
        level: u32,
        memo: &mut HashMap<(u32, Vec<bool>), NetId>,
        const_nets: &mut [Option<NetId>; 2],
    ) -> NetId {
        if table.iter().all(|&b| !b) || table.iter().all(|&b| b) {
            let c = table[0];
            return if let Some(n) = const_nets[usize::from(c)] {
                n
            } else {
                let n = self.constant(c);
                const_nets[usize::from(c)] = Some(n);
                n
            };
        }
        let key = (level, table.to_vec());
        if let Some(&n) = memo.get(&key) {
            return n;
        }
        let half = table.len() / 2;
        let sel = addr[(level - 1) as usize];
        // Address bit `level-1` selects between the low half (bit = 0) and
        // the high half (bit = 1) of the table.
        let (lo_t, hi_t) = table.split_at(half);
        let n = if lo_t == hi_t {
            self.shannon_tree(addr, lo_t, level - 1, memo, const_nets)
        } else {
            let lo = self.shannon_tree(addr, lo_t, level - 1, memo, const_nets);
            let hi = self.shannon_tree(addr, hi_t, level - 1, memo, const_nets);
            self.mux2(sel, lo, hi)
        };
        memo.insert(key, n);
        n
    }

    /// The cells, indexed by [`NetId`].
    #[must_use]
    pub fn cells(&self) -> &[Cell] {
        &self.cells
    }

    /// Cell behind a net.
    #[must_use]
    pub fn cell(&self, id: NetId) -> &Cell {
        &self.cells[id.idx()]
    }

    /// Primary input bindings in declaration order.
    #[must_use]
    pub fn inputs(&self) -> &[PortBinding] {
        &self.inputs
    }

    /// Primary output bindings in declaration order.
    #[must_use]
    pub fn outputs(&self) -> &[PortBinding] {
        &self.outputs
    }

    /// Population counts.
    #[must_use]
    pub fn stats(&self) -> NetlistStats {
        let mut s = NetlistStats {
            inputs: self.inputs.len(),
            outputs: self.outputs.len(),
            ..Default::default()
        };
        let mut rom_groups = std::collections::HashSet::new();
        for cell in &self.cells {
            match &cell.kind {
                CellKind::Input => {}
                CellKind::Const(_) => s.consts += 1,
                CellKind::Dff => s.dffs += 1,
                CellKind::RomBit { group, .. } => {
                    rom_groups.insert(*group);
                }
                k if k.is_combinational() => s.gates += 1,
                _ => {}
            }
        }
        s.roms = rom_groups.len();
        s
    }

    /// Fanout count per net (used by packing and timing).
    #[must_use]
    pub fn fanouts(&self) -> Vec<u32> {
        let mut f = vec![0u32; self.cells.len()];
        for cell in &self.cells {
            for i in &cell.inputs {
                f[i.idx()] += 1;
            }
        }
        for out in &self.outputs {
            f[out.net.idx()] += 1;
        }
        f
    }

    /// Evaluates the combinational part of the netlist for the given
    /// primary-input and state (DFF output) assignment; returns the value
    /// of every net.
    ///
    /// DFF cells evaluate to their entry in `state` (their *current* `q`);
    /// the caller advances state by re-reading each DFF's `d` operand.
    ///
    /// # Panics
    ///
    /// Panics if an input or DFF is missing from the maps.
    #[must_use]
    pub fn evaluate(
        &self,
        input_values: &HashMap<NetId, bool>,
        state: &HashMap<NetId, bool>,
    ) -> Vec<bool> {
        let mut values = vec![false; self.cells.len()];
        // Cells are created in topological order by construction (operands
        // must exist before use), so one forward pass suffices.
        for (i, cell) in self.cells.iter().enumerate() {
            let id = NetId(i as u32);
            let v = |n: NetId| values[n.idx()];
            values[i] = match &cell.kind {
                CellKind::Input => *input_values
                    .get(&id)
                    .unwrap_or_else(|| panic!("missing value for input {id:?}")),
                CellKind::Const(c) => *c,
                CellKind::Not => !v(cell.inputs[0]),
                CellKind::And2 => v(cell.inputs[0]) & v(cell.inputs[1]),
                CellKind::Or2 => v(cell.inputs[0]) | v(cell.inputs[1]),
                CellKind::Xor2 => v(cell.inputs[0]) ^ v(cell.inputs[1]),
                CellKind::Mux2 => {
                    if v(cell.inputs[0]) {
                        v(cell.inputs[2])
                    } else {
                        v(cell.inputs[1])
                    }
                }
                CellKind::Dff => *state
                    .get(&id)
                    .unwrap_or_else(|| panic!("missing state for DFF {id:?}")),
                CellKind::RomBit { table, .. } => {
                    let mut a = 0u8;
                    for (bit, &n) in cell.inputs.iter().enumerate() {
                        if v(n) {
                            a |= 1 << bit;
                        }
                    }
                    table.get(a)
                }
            };
        }
        values
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn half_adder_evaluates() {
        let mut nl = Netlist::new("ha");
        let a = nl.input("a");
        let b = nl.input("b");
        let sum = nl.xor2(a, b);
        let carry = nl.and2(a, b);
        nl.output("sum", sum);
        nl.output("carry", carry);

        for (va, vb) in [(false, false), (false, true), (true, false), (true, true)] {
            let inputs = HashMap::from([(a, va), (b, vb)]);
            let vals = nl.evaluate(&inputs, &HashMap::new());
            assert_eq!(vals[sum.idx()], va ^ vb);
            assert_eq!(vals[carry.idx()], va & vb);
        }
    }

    #[test]
    fn rom_slices_reproduce_contents() {
        let mut contents = [0u8; 256];
        for (i, c) in contents.iter_mut().enumerate() {
            *c = (i as u8).wrapping_mul(31).wrapping_add(7);
        }
        let mut nl = Netlist::new("rom");
        let addr = nl.input_bus("a", 8);
        let data = nl.rom256x8(&addr, &contents);
        nl.output_bus("d", &data);
        assert_eq!(nl.stats().roms, 1);

        for test_addr in [0u8, 1, 0x53, 0xFF, 0x80] {
            let inputs: HashMap<NetId, bool> = addr
                .iter()
                .enumerate()
                .map(|(i, &n)| (n, (test_addr >> i) & 1 == 1))
                .collect();
            let vals = nl.evaluate(&inputs, &HashMap::new());
            let mut byte = 0u8;
            for (bit, &n) in data.iter().enumerate() {
                if vals[n.idx()] {
                    byte |= 1 << bit;
                }
            }
            assert_eq!(
                byte,
                contents[usize::from(test_addr)],
                "addr {test_addr:#x}"
            );
        }
    }

    #[test]
    fn dff_reads_state() {
        let mut nl = Netlist::new("reg");
        let d = nl.input("d");
        let q = nl.dff(d);
        let nq = nl.not(q);
        nl.output("nq", nq);

        let inputs = HashMap::from([(d, true)]);
        let state = HashMap::from([(q, false)]);
        let vals = nl.evaluate(&inputs, &state);
        assert!(!vals[q.idx()]);
        assert!(vals[nq.idx()]);
        // Next-state value is read at the DFF's d operand.
        assert!(vals[d.idx()]);
    }

    #[test]
    fn word_helpers() {
        let mut nl = Netlist::new("w");
        let a = nl.input_bus("a", 4);
        let b = nl.input_bus("b", 4);
        let c = nl.input_bus("c", 4);
        let x = nl.xor_many(&[a.clone(), b.clone(), c.clone()]);
        nl.output_bus("x", &x);
        let inputs: HashMap<NetId, bool> = a
            .iter()
            .chain(&b)
            .chain(&c)
            .enumerate()
            .map(|(i, &n)| (n, i % 3 == 0))
            .collect();
        let vals = nl.evaluate(&inputs, &HashMap::new());
        for (i, &n) in x.iter().enumerate() {
            let expect = inputs[&a[i]] ^ inputs[&b[i]] ^ inputs[&c[i]];
            assert_eq!(vals[n.idx()], expect);
        }
    }

    #[test]
    fn stats_count_kinds() {
        let mut nl = Netlist::new("s");
        let a = nl.input("a");
        let k = nl.constant(true);
        let n = nl.not(a);
        let m = nl.mux2(a, n, k);
        let q = nl.dff(m);
        nl.output("q", q);
        let st = nl.stats();
        assert_eq!(st.inputs, 1);
        assert_eq!(st.outputs, 1);
        assert_eq!(st.gates, 2); // not + mux
        assert_eq!(st.dffs, 1);
        assert_eq!(st.consts, 1);
    }

    #[test]
    fn fanout_counts() {
        let mut nl = Netlist::new("f");
        let a = nl.input("a");
        let x = nl.not(a);
        let y = nl.and2(x, x);
        nl.output("y", y);
        nl.output("x", x);
        let f = nl.fanouts();
        assert_eq!(f[a.idx()], 1);
        assert_eq!(f[x.idx()], 3); // two and2 operands + one output
        assert_eq!(f[y.idx()], 1);
    }

    #[test]
    #[should_panic(expected = "does not exist yet")]
    fn forward_reference_rejected() {
        let mut nl = Netlist::new("bad");
        let _ = nl.not(NetId(42));
    }

    #[test]
    fn deferred_dff_feedback_loop() {
        // A toggle register: q feeds its own inverter.
        let mut nl = Netlist::new("toggle");
        let q = nl.dff_uninit();
        let nq = nl.not(q);
        nl.connect_dff(q, nq);
        nl.output("q", q);
        nl.validate();

        let mut state = HashMap::from([(q, false)]);
        for step in 0..4 {
            let vals = nl.evaluate(&HashMap::new(), &state);
            assert_eq!(vals[q.idx()], step % 2 == 1);
            let d = nl.cell(q).inputs[0];
            state.insert(q, vals[d.idx()]);
        }
    }

    #[test]
    #[should_panic(expected = "unconnected DFF")]
    fn connect_dff_rejects_regular_cells() {
        let mut nl = Netlist::new("bad");
        let a = nl.input("a");
        let n = nl.not(a);
        nl.connect_dff(n, a);
    }

    #[test]
    fn lut_rom_is_equivalent_to_macro_rom() {
        let mut contents = [0u8; 256];
        for (i, c) in contents.iter_mut().enumerate() {
            *c = (i as u8).wrapping_mul(167).rotate_left(3) ^ 0x5A;
        }

        let mut nl = Netlist::new("romcmp");
        let addr = nl.input_bus("a", 8);
        let macro_out = nl.rom256x8(&addr, &contents);
        let lut_out = nl.rom256x8_lut(&addr, &contents);
        nl.output_bus("m", &macro_out);
        nl.output_bus("l", &lut_out);

        for test_addr in 0..=255u8 {
            let inputs: HashMap<NetId, bool> = addr
                .iter()
                .enumerate()
                .map(|(i, &n)| (n, (test_addr >> i) & 1 == 1))
                .collect();
            let vals = nl.evaluate(&inputs, &HashMap::new());
            for bit in 0..8 {
                assert_eq!(
                    vals[macro_out[bit].idx()],
                    vals[lut_out[bit].idx()],
                    "addr {test_addr:#x} bit {bit}"
                );
            }
        }
        // The LUT form must be non-trivial but far below the naive
        // 255-mux-per-bit bound thanks to sharing.
        let gates = nl.stats().gates;
        assert!(gates > 100, "suspiciously small ROM tree: {gates}");
        assert!(gates < 8 * 255, "sharing failed: {gates}");
    }
}

//! Concurrency stress: the worker pool under simultaneous submission,
//! elastic resize, hot-swap, and shutdown.
//!
//! The invariants the pool must hold whatever the interleaving:
//!
//! 1. **No lost completions** — every `JobId` that `try_submit` accepted
//!    surfaces exactly once from the completion channel, even when the
//!    worker that held its shards was retired mid-job.
//! 2. **No duplicates** — a job never completes twice (shard re-routing
//!    must not double-deliver).
//! 3. **Ciphertext equivalence** — successful jobs byte-match the
//!    single-threaded `rijndael` reference regardless of how many workers
//!    shards migrated across.
//!
//! The whole suite runs once per detected backend (the same sweep the
//! scheduler's own tests use), so the soft paths, the cycle-accurate IP
//! models, and — where the host has them — the hardware AES instructions
//! all take the beating.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread;
use std::time::Duration;

use engine::{BackendSpec, JobId, Mode, PoolBuilder, WorkerPool};
use rijndael::modes::{Cbc, Ctr, Ecb};
use rijndael::Aes128;

const KEY: [u8; 16] = [
    0x2B, 0x7E, 0x15, 0x16, 0x28, 0xAE, 0xD2, 0xA6, 0xAB, 0xF7, 0x15, 0x88, 0x09, 0xCF, 0x4F, 0x3C,
];

const SUBMITTERS: usize = 4;
const JOBS_PER_SUBMITTER: usize = 40;
const WAIT: Duration = Duration::from_secs(30);

fn sample(seed: usize, len: usize) -> Vec<u8> {
    (0..len)
        .map(|i| (seed.wrapping_mul(31) + i * 7) as u8)
        .collect()
}

/// The single-threaded reference result for the job a submitter derives
/// from `(thread, iteration)`.
fn reference(mode: &Mode, data: &[u8]) -> Vec<u8> {
    let cipher = Aes128::new(&KEY);
    let mut out = data.to_vec();
    match mode {
        Mode::EcbEncrypt => Ecb::encrypt(&cipher, &mut out).unwrap(),
        Mode::EcbDecrypt => Ecb::decrypt(&cipher, &mut out).unwrap(),
        Mode::Ctr(nonce) => Ctr::apply(&cipher, nonce, &mut out),
        Mode::CbcEncrypt(iv) => Cbc::encrypt(&cipher, iv, &mut out).unwrap(),
        Mode::CbcDecrypt(iv) => Cbc::decrypt(&cipher, iv, &mut out).unwrap(),
        _ => unreachable!("stress uses ECB/CTR/CBC only"),
    }
    out
}

/// One submitter's job plan: parallel modes dominate (they shard and
/// migrate), with a chained stream mixed in to exercise pinning. The
/// direction follows the farm's datapath — a decrypt-only IP farm gets
/// decrypt work.
fn plan(encrypt: bool, thread: usize, i: usize) -> (Mode, Vec<u8>) {
    let len = 16 * (1 + (thread + i) % 24);
    let data = sample(thread * 1000 + i, len);
    let mode = if encrypt {
        match i % 4 {
            0 | 1 => Mode::EcbEncrypt,
            2 => Mode::Ctr([thread as u8; 16]),
            _ => Mode::CbcEncrypt([i as u8; 16]),
        }
    } else {
        match i % 3 {
            0 | 1 => Mode::EcbDecrypt,
            _ => Mode::CbcDecrypt([i as u8; 16]),
        }
    };
    (mode, data)
}

/// Runs the full stress against one backend spec: submitters race a
/// chaos thread that grows, swaps, and shrinks the farm until everyone
/// is done, then shutdown drains the rest.
fn stress(spec: BackendSpec) {
    let encrypt = spec.build(&KEY).supports(aes_ip::core::Direction::Encrypt);
    let pool = Arc::new(
        PoolBuilder::new()
            .cores(&[spec; 2])
            .capacity(SUBMITTERS * 4)
            .build(&KEY),
    );
    let expected: Arc<Mutex<BTreeMap<JobId, Vec<u8>>>> = Arc::new(Mutex::new(BTreeMap::new()));
    let done = Arc::new(AtomicBool::new(false));

    let mut submitters = Vec::new();
    for t in 0..SUBMITTERS {
        let pool = Arc::clone(&pool);
        let expected = Arc::clone(&expected);
        submitters.push(thread::spawn(move || {
            for i in 0..JOBS_PER_SUBMITTER {
                let (mode, data) = plan(encrypt, t, i);
                let want = reference(&mode, &data);
                loop {
                    match pool.try_submit(mode, data.clone()) {
                        Ok(id) => {
                            // Record *after* acceptance: the id is the
                            // receipt the pool must honor exactly once.
                            expected.lock().unwrap().insert(id, want);
                            break;
                        }
                        Err(engine::SubmitError::Busy { .. }) => {
                            thread::yield_now();
                        }
                        Err(e) => panic!("unexpected submit error: {e}"),
                    }
                }
            }
        }));
    }

    // Chaos: resize and hot-swap the farm while the submitters hammer it.
    let chaos = {
        let pool = Arc::clone(&pool);
        let done = Arc::clone(&done);
        thread::spawn(move || {
            let alternates = [BackendSpec::Software, BackendSpec::Ttable, spec];
            let mut round = 0usize;
            let mut grown: Vec<usize> = Vec::new();
            while !done.load(Ordering::Relaxed) {
                match round % 4 {
                    0 => grown.push(pool.add_core(alternates[round % alternates.len()])),
                    1 => {
                        pool.swap_core(round % 2, alternates[(round + 1) % alternates.len()]);
                    }
                    2 => {
                        if let Some(idx) = grown.pop() {
                            pool.remove_core(idx);
                        }
                    }
                    _ => {
                        // Let queues actually build so steals happen.
                        thread::sleep(Duration::from_millis(1));
                    }
                }
                round += 1;
                thread::yield_now();
            }
            // Leave the farm in a sane shape for the drain.
            for idx in grown {
                pool.remove_core(idx);
            }
        })
    };

    // Collector: drain completions concurrently so capacity keeps
    // turning over.
    let total = SUBMITTERS * JOBS_PER_SUBMITTER;
    let mut got: BTreeMap<JobId, Result<Vec<u8>, engine::JobError>> = BTreeMap::new();
    while got.len() < total {
        let out = pool
            .collect_timeout(WAIT)
            .expect("a completion arrives while work is outstanding");
        assert!(
            got.insert(out.id, out.data).is_none(),
            "duplicate completion for {}",
            out.id
        );
    }
    for s in submitters {
        s.join().unwrap();
    }
    done.store(true, Ordering::Relaxed);
    chaos.join().unwrap();
    pool.shutdown();

    // Every accepted id completed exactly once, and nothing extra came
    // back.
    let expected = expected.lock().unwrap();
    assert_eq!(got.len(), expected.len(), "lost or phantom completions");
    let mut failures = 0usize;
    for (id, want) in expected.iter() {
        match got.get(id).expect("accepted job completed") {
            Ok(bytes) => assert_eq!(bytes, want, "ciphertext mismatch for {id} under {spec:?}"),
            // A job sharded onto a worker retired at the wrong moment may
            // legitimately fail typed when nobody else could serve it —
            // the chaos thread only guarantees at least one worker
            // remains, and slot-0 swaps keep full capability here, so
            // failures should be rare and typed, never silent.
            Err(engine::JobError::NoCapableCore { .. }) => failures += 1,
            Err(e) => panic!("unexpected job fault for {id}: {e}"),
        }
    }
    assert!(
        failures == 0,
        "farm always kept a capable worker, yet {failures} jobs failed"
    );
}

#[test]
fn stress_every_detected_backend() {
    for spec in BackendSpec::detected() {
        stress(spec);
    }
}

/// Shutdown racing live submission: whatever wins, every accepted id
/// still completes exactly once.
#[test]
fn shutdown_races_submitters_without_losing_receipts() {
    let pool = Arc::new(WorkerPool::with_farm(&KEY, &[BackendSpec::Ttable; 2], 16));
    let accepted = Arc::new(Mutex::new(Vec::new()));
    let mut handles = Vec::new();
    for t in 0..SUBMITTERS {
        let pool = Arc::clone(&pool);
        let accepted = Arc::clone(&accepted);
        handles.push(thread::spawn(move || {
            for i in 0..JOBS_PER_SUBMITTER {
                match pool.try_submit(Mode::EcbEncrypt, sample(t * 100 + i, 64)) {
                    Ok(id) => accepted.lock().unwrap().push(id),
                    Err(_) => thread::yield_now(),
                }
            }
        }));
    }
    // Shut down mid-flight.
    thread::sleep(Duration::from_millis(2));
    pool.shutdown();
    for h in handles {
        h.join().unwrap();
    }
    let accepted = accepted.lock().unwrap();
    let mut seen = BTreeMap::new();
    while let Some(out) = pool.try_collect() {
        assert!(seen.insert(out.id, ()).is_none(), "duplicate completion");
        assert!(out.data.is_ok());
    }
    assert_eq!(
        seen.len(),
        accepted.len(),
        "accepted receipts must all land"
    );
}

//! Crate-level error hierarchy for the engine.
//!
//! The scheduler reports failures at two boundaries — submission
//! ([`SubmitError`]: the job never entered the queue) and execution
//! ([`JobError`]: the job ran and faulted). [`Error`] unifies both so a
//! caller that just wants "did my request work" matches one type; the
//! TCP service maps it to wire error codes in a single `match`. `From`
//! conversions lift every lower-level error (backend faults, bus
//! streaming faults, mode-layer length errors) into the hierarchy.

use core::fmt;

use aes_ip::bus::StreamError;

use crate::backend::BackendError;
use crate::scheduler::{JobError, SubmitError};

/// Any failure the engine can report.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Error {
    /// Rejected at the submission boundary; the job holds no queue slot.
    Submit(SubmitError),
    /// An accepted job faulted during execution.
    Job(JobError),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Submit(e) => write!(f, "submit rejected: {e}"),
            Error::Job(e) => write!(f, "job failed: {e}"),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Submit(e) => Some(e),
            Error::Job(e) => Some(e),
        }
    }
}

impl From<SubmitError> for Error {
    fn from(e: SubmitError) -> Self {
        Error::Submit(e)
    }
}

impl From<JobError> for Error {
    fn from(e: JobError) -> Self {
        Error::Job(e)
    }
}

impl From<BackendError> for Error {
    fn from(e: BackendError) -> Self {
        Error::Job(JobError::Backend(e))
    }
}

impl From<StreamError> for Error {
    fn from(e: StreamError) -> Self {
        Error::Job(JobError::Backend(BackendError::Bus(e)))
    }
}

impl From<rijndael::Error> for Error {
    /// Mode-layer input errors are submission-boundary errors: a ragged
    /// buffer (or an IV of the wrong width) never reaches a core.
    fn from(e: rijndael::Error) -> Self {
        match e {
            rijndael::Error::RaggedLength { len, .. } => {
                Error::Submit(SubmitError::RaggedLength { len })
            }
            rijndael::Error::BadIv { len, .. } => Error::Submit(SubmitError::BadIv { len }),
        }
    }
}

impl From<rijndael::modes::LengthError> for Error {
    fn from(e: rijndael::modes::LengthError) -> Self {
        Error::Submit(SubmitError::RaggedLength { len: e.len })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aes_ip::core::Direction;
    use std::error::Error as _;

    #[test]
    fn conversions_land_in_the_right_arm() {
        let busy: Error = SubmitError::Busy { capacity: 2 }.into();
        assert_eq!(busy, Error::Submit(SubmitError::Busy { capacity: 2 }));
        assert!(busy.to_string().contains("submit rejected"));
        assert!(busy.source().unwrap().to_string().contains("full"));

        let nocore: Error = JobError::NoCapableCore {
            dir: Direction::Decrypt,
        }
        .into();
        assert!(matches!(nocore, Error::Job(_)));
        assert!(nocore.to_string().contains("job failed"));

        let bus: Error = StreamError::CoreBusy.into();
        assert_eq!(
            bus,
            Error::Job(JobError::Backend(BackendError::Bus(StreamError::CoreBusy)))
        );

        let backend: Error = BackendError::Unsupported {
            backend: "ip-decrypt",
            dir: Direction::Encrypt,
        }
        .into();
        assert!(backend.source().unwrap().to_string().contains("cannot"));
    }

    #[test]
    fn mode_layer_errors_map_to_the_submission_boundary() {
        let ragged: Error = rijndael::Error::RaggedLength { len: 17, block: 16 }.into();
        assert_eq!(ragged, Error::Submit(SubmitError::RaggedLength { len: 17 }));
        let bad_iv: Error = rijndael::Error::BadIv { len: 4, block: 16 }.into();
        assert_eq!(bad_iv, Error::Submit(SubmitError::BadIv { len: 4 }));
        let legacy: Error = rijndael::modes::LengthError { len: 33, block: 16 }.into();
        assert_eq!(legacy, Error::Submit(SubmitError::RaggedLength { len: 33 }));
    }
}

//! Multi-core throughput engine for the low device occupation Rijndael IP.
//!
//! The DATE 2003 paper's pitch is that one AES-128 core is *small* — about
//! a tenth of an EP20K300E — so a deployment that needs more than the
//! single-core ~250 Mbps stamps down a farm of cores and scales linearly.
//! This crate models that system level:
//!
//! * [`backend`] — the [`Backend`] trait putting the three hardware
//!   devices (encrypt / decrypt / combined, behind their cycle-accurate
//!   bus drivers) and two software implementations ([`rijndael::Aes128`],
//!   the T-table variant) behind one fallible, cost-accounted face;
//! * [`scheduler`] — the [`Engine`], assembled by [`EngineBuilder`]: a
//!   bounded job queue with backpressure ([`Engine::try_submit`] returns
//!   [`SubmitError::Busy`]), sharding of parallel modes (ECB, CTR) across
//!   every capable core, and single-core routing for chained modes (CBC,
//!   CFB, OFB) through the object-safe [`rijndael::Mode`] trait;
//! * [`pool`] — the [`WorkerPool`]: the wall-clock counterpart of the
//!   engine — each core owned by an OS worker thread with a local deque,
//!   work-stealing between siblings, completions over a channel, and an
//!   elastic control plane ([`WorkerPool::add_core`] /
//!   [`WorkerPool::remove_core`] / [`WorkerPool::swap_core`], plus
//!   telemetry-driven [`WorkerPool::autoscale_tick`] under a
//!   [`ResizePolicy`]);
//! * [`stats`] — [`FarmStats`]: Table-2-style per-core and farm-aggregate
//!   figures (blocks, cycles, occupancy, cycles/block) derived from the
//!   telemetry snapshot rather than a private counter path;
//! * [`error`] — the unified [`Error`] hierarchy folding submission
//!   rejections and job faults into one `std::error::Error` type.
//!
//! Every engine publishes its activity into a [`telemetry::Registry`]
//! (its own, or a shared one passed to [`EngineBuilder::registry`]):
//! per-core counters under `engine.core.<index>.<backend>.<field>`,
//! submit/completion counters, queue-depth gauges, and latency/occupancy
//! histograms. Benches and the service's `GET_STATS` endpoint read the
//! same snapshots.
//!
//! Hardware time is virtual: every core carries its own cycle counter,
//! the cores clock concurrently, and farm wall time is the maximum over
//! them. A saturated core sustains one block per
//! [`LATENCY_CYCLES`](aes_ip::core::LATENCY_CYCLES) thanks to the
//! decoupled `Data_In`/`Out` bus, so `k` cores approach `50 / k`
//! wall cycles per block.
//!
//! # Examples
//!
//! ```
//! use engine::{BackendSpec, Engine, Mode};
//!
//! let key = [0u8; 16];
//! // Paper Table 2 scaled out: four combined cores.
//! let mut farm = Engine::with_farm(&key, &[BackendSpec::EncDecCore; 4], 8);
//! let id = farm.try_submit(Mode::Ctr([0; 16]), vec![0u8; 64 * 16]).unwrap();
//! let outputs = farm.run();
//! assert!(outputs[0].data.is_ok());
//!
//! let s = farm.stats();
//! assert_eq!(s.total_blocks(), 64);
//! // 16 blocks per core, pipelined: far below 50 cycles/block aggregate.
//! assert!(s.cycles_per_block() < 50.0 / 3.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod backend;
pub mod error;
pub mod pool;
pub mod scheduler;
pub mod stats;

pub use crate::backend::{
    Backend, BackendError, BackendSpec, BitslicedBackend, IpCoreBackend, PacedBackend,
    SoftwareBackend,
};
pub use crate::error::Error;
pub use crate::pool::{PoolBuilder, ResizeAction, ResizePolicy, WorkerPool};
pub use crate::scheduler::{Engine, EngineBuilder, JobError, JobId, JobOutput, Mode, SubmitError};
pub use crate::stats::{CoreStats, FarmStats};

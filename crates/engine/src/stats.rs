//! Farm throughput statistics derived from telemetry snapshots.
//!
//! The interesting figure for the paper's Table 2 is cycles/block: one IP
//! core sustains ~[`LATENCY_CYCLES`](aes_ip::core::LATENCY_CYCLES) cycles
//! per block once its decoupled bus is kept saturated, and a farm of `k`
//! cores divides that by `k` in wall-clock terms because the cores clock
//! concurrently. The engine models that concurrency in *virtual time*:
//! each core carries its own cycle counter and the farm's wall clock is
//! the maximum over them.
//!
//! Unlike the old ad-hoc metrics struct, these views are *derived*: the
//! engine publishes raw per-core counters into a [`telemetry::Registry`]
//! under `engine.core.<index>.<backend>.<field>` names, and
//! [`FarmStats::from_snapshot`] re-assembles the Table-2 figures from any
//! [`Snapshot`] of that registry — the engine's own, a service-wide one,
//! or a [`Snapshot::delta`] between two captures. Benches and the wire
//! `GET_STATS` reply therefore compute throughput from the *same*
//! numbers; there is no private counter path to drift.

use core::fmt;
use std::collections::BTreeMap;
use std::fmt::Write as _;

use telemetry::{Snapshot, Value};

/// The instrument-name prefix the engine publishes per-core counters
/// under: `engine.core.<index>.<backend>.<field>`.
pub const CORE_PREFIX: &str = "engine.core.";

/// One farm member's raw counters, re-assembled from a snapshot.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CoreStats {
    /// The core's farm slot.
    pub index: usize,
    /// Backend name (`ip-encrypt`, `soft-ref`, …).
    pub name: String,
    /// Blocks the backend processed.
    pub blocks: u64,
    /// Total virtual cycles, key setup included.
    pub cycles: u64,
    /// Cycles spent loading keys before any data moved.
    pub setup_cycles: u64,
    /// Cycles the datapath was computing (occupancy numerator).
    pub busy_cycles: u64,
}

impl CoreStats {
    /// Cycles spent processing blocks after key setup — the core's
    /// contribution to the farm wall clock.
    #[must_use]
    pub fn operation_cycles(&self) -> u64 {
        self.cycles.saturating_sub(self.setup_cycles)
    }

    /// Datapath occupancy in percent: `busy / operation × 100`
    /// (100 for an idle core that was never asked to work).
    #[must_use]
    pub fn occupancy_pct(&self) -> f64 {
        let op = self.operation_cycles();
        if op == 0 {
            100.0
        } else {
            100.0 * self.busy_cycles as f64 / op as f64
        }
    }

    /// Mean operation cycles per block (0 for an idle core).
    #[must_use]
    pub fn cycles_per_block(&self) -> f64 {
        if self.blocks == 0 {
            0.0
        } else {
            self.operation_cycles() as f64 / self.blocks as f64
        }
    }
}

/// Farm-aggregate view over the `engine.core.*` counters of a snapshot.
#[derive(Debug, Clone, PartialEq)]
pub struct FarmStats {
    /// One entry per farm slot, in slot order.
    pub per_core: Vec<CoreStats>,
}

impl FarmStats {
    /// Re-assembles per-core stats from every
    /// `engine.core.<index>.<backend>.<field>` counter in `snap`.
    /// Non-matching instruments (including the `engine.core.occupancy_bp`
    /// histogram) are ignored.
    ///
    /// The index space is *not* assumed dense or fixed: an elastic pool
    /// adds and removes cores at runtime (leaving holes), and a hot-swap
    /// retires one backend's counters at an index and starts another's.
    /// Entries are therefore keyed by `(index, backend name)` — after a
    /// swap the same slot reports one line per backend that lived there,
    /// each with the blocks it actually processed.
    #[must_use]
    pub fn from_snapshot(snap: &Snapshot) -> Self {
        let mut cores: BTreeMap<(usize, String), CoreStats> = BTreeMap::new();
        for e in snap.entries() {
            let Some(rest) = e.name.strip_prefix(CORE_PREFIX) else {
                continue;
            };
            let Some((index, rest)) = rest.split_once('.') else {
                continue;
            };
            let Ok(index) = index.parse::<usize>() else {
                continue;
            };
            // Backend names never contain '.', field names never do
            // either, so the last dot separates them.
            let Some((backend, field)) = rest.rsplit_once('.') else {
                continue;
            };
            let Value::Counter(v) = e.value else { continue };
            let core = cores
                .entry((index, backend.to_string()))
                .or_insert_with(|| CoreStats {
                    index,
                    name: backend.to_string(),
                    blocks: 0,
                    cycles: 0,
                    setup_cycles: 0,
                    busy_cycles: 0,
                });
            match field {
                "blocks" => core.blocks = v,
                "cycles" => core.cycles = v,
                "setup_cycles" => core.setup_cycles = v,
                "busy_cycles" => core.busy_cycles = v,
                _ => {}
            }
        }
        FarmStats {
            per_core: cores.into_values().collect(),
        }
    }

    /// Blocks processed across the farm.
    #[must_use]
    pub fn total_blocks(&self) -> u64 {
        self.per_core.iter().map(|c| c.blocks).sum()
    }

    /// Virtual wall-clock cycles: the cores clock concurrently, so this
    /// is the *maximum* per-core operation time, not the sum.
    #[must_use]
    pub fn wall_cycles(&self) -> u64 {
        self.per_core
            .iter()
            .map(CoreStats::operation_cycles)
            .max()
            .unwrap_or(0)
    }

    /// Aggregate throughput figure: `wall_cycles / total_blocks`
    /// (0 when the farm processed nothing).
    #[must_use]
    pub fn cycles_per_block(&self) -> f64 {
        let blocks = self.total_blocks();
        if blocks == 0 {
            0.0
        } else {
            self.wall_cycles() as f64 / blocks as f64
        }
    }

    /// Minimum occupancy over the cores that did any work (100 when the
    /// whole farm idled) — the saturation criterion for scaling reports.
    #[must_use]
    pub fn min_occupancy_pct(&self) -> f64 {
        self.per_core
            .iter()
            .filter(|c| c.blocks > 0)
            .map(CoreStats::occupancy_pct)
            .fold(f64::INFINITY, f64::min)
            .min(100.0)
    }

    /// Renders a fixed-width text table in the style of the repo's other
    /// report binaries.
    #[must_use]
    pub fn report(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:<12} {:>8} {:>10} {:>10} {:>11} {:>12}",
            "core", "blocks", "op cycles", "busy", "occupancy", "cycles/block"
        );
        for c in &self.per_core {
            let _ = writeln!(
                out,
                "{:<12} {:>8} {:>10} {:>10} {:>10.1}% {:>12.2}",
                c.name,
                c.blocks,
                c.operation_cycles(),
                c.busy_cycles,
                c.occupancy_pct(),
                c.cycles_per_block()
            );
        }
        let _ = writeln!(
            out,
            "farm: {} blocks in {} wall cycles = {:.2} cycles/block",
            self.total_blocks(),
            self.wall_cycles(),
            self.cycles_per_block()
        );
        out
    }
}

impl fmt::Display for FarmStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.report())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use telemetry::Registry;

    fn publish(reg: &Registry, index: usize, name: &str, blocks: u64, op: u64, busy: u64) {
        let prefix = format!("engine.core.{index}.{name}");
        reg.counter(&format!("{prefix}.blocks")).add(blocks);
        reg.counter(&format!("{prefix}.cycles")).add(op + 10);
        reg.counter(&format!("{prefix}.setup_cycles")).add(10);
        reg.counter(&format!("{prefix}.busy_cycles")).add(busy);
    }

    #[test]
    fn wall_clock_is_the_maximum_not_the_sum() {
        let reg = Registry::new();
        publish(&reg, 0, "ip-encrypt", 8, 401, 400);
        publish(&reg, 1, "ip-encrypt", 8, 401, 400);
        publish(&reg, 2, "soft-ref", 4, 201, 200);
        let s = FarmStats::from_snapshot(&reg.snapshot());
        assert_eq!(s.per_core.len(), 3);
        assert_eq!(s.total_blocks(), 20);
        assert_eq!(s.wall_cycles(), 401);
        assert!((s.cycles_per_block() - 401.0 / 20.0).abs() < 1e-9);
        // Slot order and setup-cycle subtraction survive the round trip.
        assert_eq!(s.per_core[2].name, "soft-ref");
        assert_eq!(s.per_core[2].cycles, 211);
        assert_eq!(s.per_core[2].operation_cycles(), 201);
    }

    #[test]
    fn min_occupancy_ignores_idle_cores() {
        let reg = Registry::new();
        publish(&reg, 0, "ip-encrypt", 8, 401, 400);
        publish(&reg, 1, "ip-decrypt", 0, 0, 0);
        let s = FarmStats::from_snapshot(&reg.snapshot());
        assert!((s.min_occupancy_pct() - 100.0 * 400.0 / 401.0).abs() < 1e-9);
        assert_eq!(s.per_core[1].occupancy_pct(), 100.0);
        assert_eq!(s.per_core[1].cycles_per_block(), 0.0);

        let idle = Registry::new();
        publish(&idle, 0, "ip-encrypt", 0, 0, 0);
        assert_eq!(
            FarmStats::from_snapshot(&idle.snapshot()).min_occupancy_pct(),
            100.0
        );
    }

    #[test]
    fn empty_snapshot_divides_by_nothing() {
        let s = FarmStats::from_snapshot(&Registry::new().snapshot());
        assert!(s.per_core.is_empty());
        assert_eq!(s.total_blocks(), 0);
        assert_eq!(s.wall_cycles(), 0);
        assert_eq!(s.cycles_per_block(), 0.0);
        assert_eq!(s.min_occupancy_pct(), 100.0);
    }

    #[test]
    fn unrelated_instruments_are_ignored() {
        let reg = Registry::new();
        publish(&reg, 0, "ip-encrypt", 8, 401, 400);
        reg.counter("engine.submit.accepted").add(99);
        reg.gauge("engine.queue.depth").set(7);
        reg.histogram("engine.core.occupancy_bp", &[5000, 10000])
            .record(9975);
        reg.counter("engine.core.bogus").add(1); // no index.backend.field
        let s = FarmStats::from_snapshot(&reg.snapshot());
        assert_eq!(s.per_core.len(), 1);
        assert_eq!(s.total_blocks(), 8);
    }

    #[test]
    fn sparse_indices_and_swapped_backends_each_get_a_line() {
        let reg = Registry::new();
        publish(&reg, 0, "ip-encdec", 8, 401, 400);
        // Elastic farms leave holes: slots 1..4 were removed at runtime.
        publish(&reg, 5, "soft-ttable", 4, 201, 200);
        // A hot-swap retires one backend at a slot and starts another:
        // the same index reports one line per backend that lived there.
        publish(&reg, 5, "soft-aesni", 2, 101, 100);
        let s = FarmStats::from_snapshot(&reg.snapshot());
        assert_eq!(s.per_core.len(), 3);
        assert_eq!(s.total_blocks(), 14);
        let seen: Vec<(usize, &str, u64)> = s
            .per_core
            .iter()
            .map(|c| (c.index, c.name.as_str(), c.blocks))
            .collect();
        assert_eq!(
            seen,
            vec![
                (0, "ip-encdec", 8),
                (5, "soft-aesni", 2),
                (5, "soft-ttable", 4),
            ]
        );
    }

    #[test]
    fn report_lists_every_core_and_the_farm_line() {
        let reg = Registry::new();
        publish(&reg, 0, "ip-encrypt", 8, 401, 400);
        let s = FarmStats::from_snapshot(&reg.snapshot());
        let text = s.report();
        assert!(text.contains("ip-encrypt"));
        assert!(text.contains("farm: 8 blocks"));
        assert_eq!(text, s.to_string());
    }
}

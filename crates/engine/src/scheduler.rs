//! Job scheduling across a farm of [`Backend`]s.
//!
//! The paper sells the IP on *area*, not speed: one core occupies ~10% of
//! an EP20K300E, so a system integrator can stamp down several and scale
//! throughput linearly. The [`Engine`] models that deployment. Jobs are
//! whole mode operations (ECB/CBC/CTR/CFB/OFB over a byte buffer); the
//! scheduler shards counter-mode and ECB work evenly across every capable
//! core (each core pipelines its share through the decoupled bus at one
//! block per latency period) and routes chained modes — where block `i+1`
//! depends on block `i` — to the single least-loaded capable core.
//! Chained streams run through the object-safe [`rijndael::Mode`] trait,
//! the same dynamic surface the service uses, over a per-job adapter that
//! presents the chosen backend as a [`BlockCipher`].
//!
//! Submission is backpressured: the queue is bounded and
//! [`Engine::try_submit`] returns [`SubmitError::Busy`] instead of
//! growing without limit, mirroring the `data_ok` handshake one level up.
//!
//! Engines are built with [`EngineBuilder`] and publish their activity
//! into a [`telemetry::Registry`] — their own private one by default, or
//! a shared one via [`EngineBuilder::registry`] so several engines (e.g.
//! one per service session) aggregate into a single snapshot. Per-core
//! counters live under `engine.core.<index>.<backend>.<field>` and are
//! pushed as *deltas* from the backends' own cycle counters, so shared
//! instruments sum coherently; [`FarmStats::from_snapshot`] turns any
//! snapshot back into Table-2 figures.

use std::cell::{Cell, RefCell};
use std::collections::VecDeque;
use std::fmt;

use aes_ip::core::Direction;
use rijndael::modes::{Cbc, Cfb, Ctr, Iv, Ofb};
use rijndael::BlockCipher;
use telemetry::{Counter, Gauge, Histogram, Registry, Snapshot};

use crate::backend::{Backend, BackendError, BackendSpec};
use crate::stats::FarmStats;

/// AES block size in bytes.
const BLOCK: usize = 16;

/// Bucket bounds for the `engine.job.latency_cycles` histogram:
/// geometric steps from about one block period up past 2500 blocks.
const LATENCY_BOUNDS: [u64; 12] = [
    64, 128, 256, 512, 1024, 2048, 4096, 8192, 16384, 32768, 65536, 131072,
];

/// Bucket bounds for the `engine.core.occupancy_bp` histogram: datapath
/// occupancy in basis points (10000 = fully saturated), deciles. Shared
/// with the thread [`pool`](crate::pool), which samples the same
/// instrument.
pub(crate) const OCCUPANCY_BOUNDS: [u64; 10] =
    [1000, 2000, 3000, 4000, 5000, 6000, 7000, 8000, 9000, 10000];

/// A complete cipher-mode operation over one byte buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mode {
    /// ECB encryption (parallel; requires whole blocks).
    EcbEncrypt,
    /// ECB decryption (parallel; requires whole blocks).
    EcbDecrypt,
    /// CBC encryption (chained; requires whole blocks).
    CbcEncrypt(
        /// Initialisation vector.
        [u8; 16],
    ),
    /// CBC decryption (chained here; requires whole blocks).
    CbcDecrypt(
        /// Initialisation vector.
        [u8; 16],
    ),
    /// CTR keystream application — encryption and decryption are the same
    /// operation (parallel; any length).
    Ctr(
        /// Initial counter block (NIST SP 800-38A convention).
        [u8; 16],
    ),
    /// CFB encryption (chained; any length).
    CfbEncrypt(
        /// Initialisation vector.
        [u8; 16],
    ),
    /// CFB decryption (chained here; any length).
    CfbDecrypt(
        /// Initialisation vector.
        [u8; 16],
    ),
    /// OFB keystream application — self-inverse (chained; any length).
    Ofb(
        /// Initialisation vector.
        [u8; 16],
    ),
}

impl Mode {
    /// Which core datapath the mode exercises. Only CBC decryption and
    /// ECB decryption need the inverse cipher; CTR, CFB and OFB run the
    /// *forward* datapath in both directions, so they schedule onto
    /// encrypt-only cores.
    #[must_use]
    pub fn direction(self) -> Direction {
        match self {
            Mode::EcbDecrypt | Mode::CbcDecrypt(_) => Direction::Decrypt,
            _ => Direction::Encrypt,
        }
    }

    /// `true` when blocks are independent and the job can be sharded
    /// across several cores.
    #[must_use]
    pub fn is_parallel(self) -> bool {
        matches!(self, Mode::EcbEncrypt | Mode::EcbDecrypt | Mode::Ctr(_))
    }

    /// `true` when the buffer must be a whole number of blocks.
    #[must_use]
    pub fn requires_full_blocks(self) -> bool {
        matches!(
            self,
            Mode::EcbEncrypt | Mode::EcbDecrypt | Mode::CbcEncrypt(_) | Mode::CbcDecrypt(_)
        )
    }
}

impl fmt::Display for Mode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Mode::EcbEncrypt => "ecb-encrypt",
            Mode::EcbDecrypt => "ecb-decrypt",
            Mode::CbcEncrypt(_) => "cbc-encrypt",
            Mode::CbcDecrypt(_) => "cbc-decrypt",
            Mode::Ctr(_) => "ctr",
            Mode::CfbEncrypt(_) => "cfb-encrypt",
            Mode::CfbDecrypt(_) => "cfb-decrypt",
            Mode::Ofb(_) => "ofb",
        };
        f.write_str(s)
    }
}

/// Opaque handle identifying a submitted job in [`Engine::run`] output.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct JobId(u64);

impl JobId {
    /// Crate-internal constructor so the thread [`pool`](crate::pool) can
    /// mint ids from its own allocator without widening the public API.
    pub(crate) const fn from_raw(raw: u64) -> JobId {
        JobId(raw)
    }
}

impl fmt::Display for JobId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "job#{}", self.0)
    }
}

/// Rejection at the submission boundary (the job never enters the queue).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SubmitError {
    /// The bounded queue is full — drain with [`Engine::run`] and retry.
    Busy {
        /// The queue capacity that was exhausted.
        capacity: usize,
    },
    /// The mode requires whole 16-byte blocks but the buffer is ragged.
    RaggedLength {
        /// The offending buffer length.
        len: usize,
    },
    /// The IV does not match the cipher's 16-byte block width. Engine
    /// [`Mode`] carries fixed-width IVs, so this arises only when lifting
    /// a [`rijndael::Error`] from the dynamic mode surface upstream.
    BadIv {
        /// The offending IV length.
        len: usize,
    },
}

impl fmt::Display for SubmitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SubmitError::Busy { capacity } => {
                write!(f, "engine queue full ({capacity} jobs); run() to drain")
            }
            SubmitError::RaggedLength { len } => {
                write!(f, "mode requires whole 16-byte blocks, got {len} bytes")
            }
            SubmitError::BadIv { len } => {
                write!(f, "IV must be 16 bytes, got {len}")
            }
        }
    }
}

impl std::error::Error for SubmitError {}

/// Failure of one accepted job (other jobs in the batch still run).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobError {
    /// No core in the farm has a datapath for the job's direction.
    NoCapableCore {
        /// The direction nobody supports.
        dir: Direction,
    },
    /// A backend faulted mid-job.
    Backend(BackendError),
    /// A pool worker panicked while executing the job; the panic was
    /// contained and the worker kept running, but the job's bytes are
    /// gone.
    WorkerPanicked,
}

impl fmt::Display for JobError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JobError::NoCapableCore { dir } => {
                let verb = match dir {
                    Direction::Encrypt => "encrypt",
                    Direction::Decrypt => "decrypt",
                };
                write!(f, "no core in the farm can {verb}")
            }
            JobError::Backend(e) => write!(f, "{e}"),
            JobError::WorkerPanicked => write!(f, "a pool worker panicked mid-job"),
        }
    }
}

impl std::error::Error for JobError {}

impl From<BackendError> for JobError {
    fn from(e: BackendError) -> Self {
        JobError::Backend(e)
    }
}

/// One finished job from [`Engine::run`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobOutput {
    /// The handle [`Engine::try_submit`] returned for this job.
    pub id: JobId,
    /// The processed buffer, or why the job failed.
    pub data: Result<Vec<u8>, JobError>,
}

struct QueuedJob {
    id: JobId,
    mode: Mode,
    data: Vec<u8>,
}

/// Telemetry handles for one farm slot, plus the last values already
/// pushed into the registry. The backends own the authoritative counters;
/// the engine publishes *deltas* so several engines can share one
/// registry (per-session engines under one service) and the shared
/// instruments still sum coherently.
struct CoreTelemetry {
    blocks: Counter,
    cycles: Counter,
    setup_cycles: Counter,
    busy_cycles: Counter,
    pushed: Cell<(u64, u64, u64, u64)>,
}

/// Configures and builds an [`Engine`].
///
/// Replaces the old `Engine::new(Vec<Box<dyn Backend>>, capacity)`
/// constructor: the builder owns farm composition (specs keyed at build
/// time, or pre-keyed boxed backends), the queue capacity, and the
/// telemetry [`Registry`] the engine publishes into.
///
/// # Examples
///
/// ```
/// use engine::{BackendSpec, EngineBuilder, Mode};
///
/// let reg = telemetry::Registry::new();
/// let mut engine = EngineBuilder::new()
///     .cores(&[BackendSpec::EncDecCore; 2])
///     .capacity(4)
///     .registry(reg.clone())
///     .build(&[0x2B; 16]);
/// engine.try_submit(Mode::EcbEncrypt, vec![0; 64]).unwrap();
/// engine.run();
/// assert_eq!(reg.snapshot().counter("engine.jobs.completed"), Some(1));
/// ```
#[derive(Default)]
pub struct EngineBuilder {
    specs: Vec<BackendSpec>,
    extra: Vec<Box<dyn Backend>>,
    capacity: Option<usize>,
    registry: Option<Registry>,
}

impl EngineBuilder {
    /// Starts an empty builder (no cores, default capacity 8, private
    /// registry).
    #[must_use]
    pub fn new() -> Self {
        EngineBuilder::default()
    }

    /// Adds one farm slot built from `spec` (keyed at [`build`] time; IP
    /// cores pay their real key-setup cycles there).
    ///
    /// [`build`]: EngineBuilder::build
    #[must_use]
    pub fn core(mut self, spec: BackendSpec) -> Self {
        self.specs.push(spec);
        self
    }

    /// Adds one farm slot per spec, in order.
    #[must_use]
    pub fn cores(mut self, specs: &[BackendSpec]) -> Self {
        self.specs.extend_from_slice(specs);
        self
    }

    /// Adds an already-keyed backend after the spec-built slots.
    #[must_use]
    pub fn backend(mut self, worker: Box<dyn Backend>) -> Self {
        self.extra.push(worker);
        self
    }

    /// Sets the bounded queue capacity (default 8).
    #[must_use]
    pub fn capacity(mut self, capacity: usize) -> Self {
        self.capacity = Some(capacity);
        self
    }

    /// Publishes the engine's instruments into `registry` instead of a
    /// fresh private one. Engines sharing a registry (and farm layout)
    /// share instruments; their delta-pushed counters aggregate.
    #[must_use]
    pub fn registry(mut self, registry: Registry) -> Self {
        self.registry = Some(registry);
        self
    }

    /// Keys every spec-built slot with `key` and assembles the engine.
    ///
    /// # Panics
    ///
    /// Panics on an empty farm or a zero-capacity queue — both would make
    /// every submission unroutable — and if `key.len()` is not 16, 24 or
    /// 32 bytes.
    #[must_use]
    pub fn build(self, key: &[u8]) -> Engine {
        let mut workers: Vec<Box<dyn Backend>> = self.specs.iter().map(|s| s.build(key)).collect();
        workers.extend(self.extra);
        assert!(!workers.is_empty(), "an engine needs at least one backend");
        let capacity = self.capacity.unwrap_or(8);
        assert!(capacity > 0, "a zero-capacity queue rejects every job");
        let registry = self.registry.unwrap_or_default();
        let cores_tel = workers
            .iter()
            .enumerate()
            .map(|(i, w)| {
                let prefix = format!("engine.core.{i}.{}", w.name());
                CoreTelemetry {
                    blocks: registry.counter(&format!("{prefix}.blocks")),
                    cycles: registry.counter(&format!("{prefix}.cycles")),
                    setup_cycles: registry.counter(&format!("{prefix}.setup_cycles")),
                    busy_cycles: registry.counter(&format!("{prefix}.busy_cycles")),
                    pushed: Cell::new((0, 0, 0, 0)),
                }
            })
            .collect();
        registry.gauge("engine.queue.capacity").set(capacity as i64);
        Engine {
            queue: VecDeque::new(),
            capacity,
            next_id: 0,
            cores_tel,
            submit_accepted: registry.counter("engine.submit.accepted"),
            submit_busy: registry.counter("engine.submit.busy"),
            submit_ragged: registry.counter("engine.submit.ragged"),
            jobs_completed: registry.counter("engine.jobs.completed"),
            jobs_failed: registry.counter("engine.jobs.failed"),
            queue_depth: registry.gauge("engine.queue.depth"),
            job_latency: registry.histogram("engine.job.latency_cycles", &LATENCY_BOUNDS),
            occupancy_bp: registry.histogram("engine.core.occupancy_bp", &OCCUPANCY_BOUNDS),
            registry,
            workers,
        }
    }
}

impl fmt::Debug for EngineBuilder {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("EngineBuilder")
            .field("specs", &self.specs)
            .field("extra", &self.extra.len())
            .field("capacity", &self.capacity)
            .field("shared_registry", &self.registry.is_some())
            .finish()
    }
}

/// Multi-core throughput engine: a farm of backends, a bounded job
/// queue, and the shard/route scheduler.
///
/// # Examples
///
/// ```
/// use engine::{BackendSpec, Engine, Mode};
///
/// let key = [0x2B; 16];
/// let mut engine = Engine::with_farm(&key, &[BackendSpec::EncDecCore; 2], 8);
/// let id = engine.try_submit(Mode::Ctr([0; 16]), b"attack at dawn".to_vec()).unwrap();
/// let out = engine.run();
/// assert_eq!(out[0].id, id);
/// let ciphertext = out[0].data.clone().unwrap();
///
/// // CTR is self-inverse: a second pass recovers the plaintext.
/// engine.try_submit(Mode::Ctr([0; 16]), ciphertext).unwrap();
/// assert_eq!(engine.run()[0].data.clone().unwrap(), b"attack at dawn");
/// ```
pub struct Engine {
    workers: Vec<Box<dyn Backend>>,
    queue: VecDeque<QueuedJob>,
    capacity: usize,
    next_id: u64,
    registry: Registry,
    cores_tel: Vec<CoreTelemetry>,
    submit_accepted: Counter,
    submit_busy: Counter,
    submit_ragged: Counter,
    jobs_completed: Counter,
    jobs_failed: Counter,
    queue_depth: Gauge,
    job_latency: Histogram,
    occupancy_bp: Histogram,
}

impl Engine {
    /// Builds a farm from `specs` with a private registry, loading `key`
    /// into every member (IP cores pay their real key-setup cycles here;
    /// 24/32-byte keys divert IP-core specs to the software fallback).
    /// Shorthand for the common [`EngineBuilder`] case.
    #[must_use]
    pub fn with_farm(key: &[u8], specs: &[BackendSpec], capacity: usize) -> Self {
        EngineBuilder::new()
            .cores(specs)
            .capacity(capacity)
            .build(key)
    }

    /// Number of farm slots.
    #[must_use]
    pub fn cores(&self) -> usize {
        self.workers.len()
    }

    /// Jobs waiting in the queue.
    #[must_use]
    pub fn queued(&self) -> usize {
        self.queue.len()
    }

    /// The queue bound.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// The registry this engine publishes into.
    #[must_use]
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// Enqueues a mode operation over `data`, applying backpressure.
    ///
    /// # Errors
    ///
    /// * [`SubmitError::Busy`] when the queue is at capacity;
    /// * [`SubmitError::RaggedLength`] when an ECB/CBC job is not a whole
    ///   number of blocks (caught here, before the job holds a slot).
    pub fn try_submit(&mut self, mode: Mode, data: Vec<u8>) -> Result<JobId, SubmitError> {
        if self.queue.len() >= self.capacity {
            self.submit_busy.incr();
            return Err(SubmitError::Busy {
                capacity: self.capacity,
            });
        }
        if mode.requires_full_blocks() && !data.len().is_multiple_of(BLOCK) {
            self.submit_ragged.incr();
            return Err(SubmitError::RaggedLength { len: data.len() });
        }
        self.submit_accepted.incr();
        self.queue_depth.add(1);
        let id = JobId(self.next_id);
        self.next_id += 1;
        self.queue.push_back(QueuedJob { id, mode, data });
        Ok(id)
    }

    /// Drains the queue in submission order, returning one output per
    /// job. A job that faults reports its [`JobError`]; the rest of the
    /// batch still runs.
    pub fn run(&mut self) -> Vec<JobOutput> {
        // An empty queue means nothing moved since the last sync: skip
        // the per-core delta bookkeeping entirely so pipelined collect
        // loops polling an idle engine stop paying snapshot churn.
        if self.queue.is_empty() {
            return Vec::new();
        }
        let mut outputs = Vec::with_capacity(self.queue.len());
        let mut before = vec![0u64; self.workers.len()];
        while let Some(job) = self.queue.pop_front() {
            self.queue_depth.sub(1);
            for (b, w) in before.iter_mut().zip(&self.workers) {
                *b = w.cycles();
            }
            let QueuedJob { id, mode, mut data } = job;
            let result = self.dispatch(mode, &mut data);
            // Submit-to-complete latency in virtual time: the cores clock
            // concurrently, so the job takes as long as its slowest share.
            let latency = self
                .workers
                .iter()
                .zip(&before)
                .map(|(w, b)| w.cycles().saturating_sub(*b))
                .max()
                .unwrap_or(0);
            self.job_latency.record(latency);
            let data = match result {
                Ok(()) => {
                    self.jobs_completed.incr();
                    Ok(data)
                }
                Err(e) => {
                    self.jobs_failed.incr();
                    Err(e)
                }
            };
            outputs.push(JobOutput { id, data });
        }
        self.sync_telemetry();
        outputs
    }

    /// Pushes each backend's counter growth since the last sync into the
    /// registry, and samples per-core occupancy over that growth.
    fn sync_telemetry(&self) {
        for (w, t) in self.workers.iter().zip(&self.cores_tel) {
            let now = (w.blocks(), w.cycles(), w.setup_cycles(), w.busy_cycles());
            let last = t.pushed.replace(now);
            t.blocks.add(now.0.saturating_sub(last.0));
            t.cycles.add(now.1.saturating_sub(last.1));
            t.setup_cycles.add(now.2.saturating_sub(last.2));
            t.busy_cycles.add(now.3.saturating_sub(last.3));
            // Fully saturating: a racing snapshot can legitimately show a
            // setup-cycle delta larger than the total-cycle delta (a
            // re-key landing between the two reads), and an underflow
            // here would panic in debug or fabricate an absurd occupancy
            // basis in release.
            let op_delta = now
                .1
                .saturating_sub(last.1)
                .saturating_sub(now.2.saturating_sub(last.2));
            let busy_delta = now.3.saturating_sub(last.3);
            if let Some(bp) = busy_delta.saturating_mul(10_000).checked_div(op_delta) {
                self.occupancy_bp.record(bp);
            }
        }
    }

    /// Captures the registry after syncing this engine's core counters.
    #[must_use]
    pub fn snapshot(&self) -> Snapshot {
        self.sync_telemetry();
        self.registry.snapshot()
    }

    /// Table-2-style farm figures derived from [`Engine::snapshot`].
    #[must_use]
    pub fn stats(&self) -> FarmStats {
        FarmStats::from_snapshot(&self.snapshot())
    }

    /// Indices of workers that can process `dir`.
    fn eligible(&self, dir: Direction) -> Vec<usize> {
        (0..self.workers.len())
            .filter(|&i| self.workers[i].supports(dir))
            .collect()
    }

    fn dispatch(&mut self, mode: Mode, data: &mut [u8]) -> Result<(), JobError> {
        let dir = mode.direction();
        let eligible = self.eligible(dir);
        if eligible.is_empty() {
            return Err(JobError::NoCapableCore { dir });
        }
        match mode {
            Mode::EcbEncrypt | Mode::EcbDecrypt => self.run_ecb(&eligible, dir, data),
            Mode::Ctr(nonce) => self.run_ctr(&eligible, &nonce, data),
            // Chained modes: block `i+1` depends on block `i`, so the
            // whole stream goes to the single least-loaded eligible core.
            _ => {
                let w = *eligible
                    .iter()
                    .min_by_key(|&&i| self.workers[i].cycles())
                    .expect("eligible is non-empty");
                run_on_one(self.workers[w].as_mut(), mode, data)
            }
        }
    }

    /// Evenly shards `n` items across `k` shares: the first `n % k`
    /// shares get one extra item.
    fn shares(n: usize, k: usize) -> Vec<usize> {
        let base = n / k;
        (0..k).map(|i| base + usize::from(i < n % k)).collect()
    }

    /// Shards `n` blocks across `k` shares in multiples of the bitsliced
    /// 8-block granule: whole granules are distributed evenly, then the
    /// last non-empty share gives back the padding so the total is
    /// exactly `n`. Every share but possibly the last is a multiple of 8,
    /// which keeps the bitsliced backend's passes full; only one core
    /// ever sees a ragged (padded) granule. Shared with the thread
    /// [`pool`](crate::pool), which deals the same granule plan across
    /// worker deques.
    pub(crate) fn shares_batched(n: usize, k: usize) -> Vec<usize> {
        const GRANULE: usize = 8;
        let mut out: Vec<usize> = Self::shares(n.div_ceil(GRANULE), k)
            .into_iter()
            .map(|g| g * GRANULE)
            .collect();
        let mut excess = out.iter().sum::<usize>() - n;
        for share in out.iter_mut().rev() {
            if *share > 0 {
                *share -= excess;
                excess = 0;
                break;
            }
        }
        debug_assert_eq!(excess, 0);
        out
    }

    /// ECB: independent whole blocks, sharded across every eligible core
    /// in granule multiples and submitted through each core's widest
    /// batch path — in place, no staging copies.
    fn run_ecb(
        &mut self,
        eligible: &[usize],
        dir: Direction,
        data: &mut [u8],
    ) -> Result<(), JobError> {
        let n = data.len() / BLOCK;
        let mut offset = 0;
        for (&w, share) in eligible.iter().zip(Self::shares_batched(n, eligible.len())) {
            if share == 0 {
                continue;
            }
            let span = &mut data[offset..offset + share * BLOCK];
            run_ecb_span(self.workers[w].as_mut(), dir, span)?;
            offset += share * BLOCK;
        }
        Ok(())
    }

    /// CTR: each core generates the keystream for its contiguous span of
    /// counter values (SP 800-38A increment, so spans are just offsets)
    /// and XORs it into its span of the buffer.
    fn run_ctr(
        &mut self,
        eligible: &[usize],
        nonce: &[u8; 16],
        data: &mut [u8],
    ) -> Result<(), JobError> {
        let n = data.len().div_ceil(BLOCK);
        let mut first_block = 0usize;
        for (&w, share) in eligible.iter().zip(Self::shares_batched(n, eligible.len())) {
            if share == 0 {
                continue;
            }
            let end = data.len().min((first_block + share) * BLOCK);
            let span = &mut data[first_block * BLOCK..end];
            run_ctr_span(self.workers[w].as_mut(), nonce, first_block as u128, span)?;
            first_block += share;
        }
        Ok(())
    }
}

/// One ECB span on one backend: whole blocks through the widest batch
/// path, in place. The single-backend executor both the virtual-time
/// [`Engine`] and the thread [`pool`](crate::pool) shard over.
pub(crate) fn run_ecb_span(
    backend: &mut dyn Backend,
    dir: Direction,
    data: &mut [u8],
) -> Result<(), JobError> {
    let (blocks, rest) = data.as_chunks_mut::<BLOCK>();
    debug_assert!(rest.is_empty(), "length validated at submission");
    backend.process_batch(blocks, dir)?;
    Ok(())
}

/// One CTR span on one backend: generates the keystream for the span's
/// contiguous counter values (SP 800-38A increment; `first_block` is the
/// span's offset into the stream) and XORs it into `data` in place.
/// Counter blocks are precomputed with [`Ctr::fill_counter_blocks`] —
/// one scratch buffer per span, no per-block allocation.
pub(crate) fn run_ctr_span(
    backend: &mut dyn Backend,
    nonce: &[u8; 16],
    first_block: u128,
    data: &mut [u8],
) -> Result<(), JobError> {
    let mut counters = vec![[0u8; 16]; data.len().div_ceil(BLOCK)];
    Ctr::fill_counter_blocks(nonce, first_block, &mut counters);
    backend.process_batch(&mut counters, Direction::Encrypt)?;
    for (chunk, keystream) in data.chunks_mut(BLOCK).zip(counters.iter()) {
        for (byte, k) in chunk.iter_mut().zip(keystream) {
            *byte ^= k;
        }
    }
    Ok(())
}

/// Runs a whole mode operation on a single backend: parallel modes take
/// their span executors over the full buffer, chained modes drive the
/// object-safe [`rijndael::Mode`] trait through a [`BackendCipher`]
/// adapter. Used by the [`Engine`] for chained routing and by the thread
/// [`pool`](crate::pool) for pinned (unsharded) tasks of every mode.
pub(crate) fn run_on_one(
    backend: &mut dyn Backend,
    mode: Mode,
    data: &mut [u8],
) -> Result<(), JobError> {
    let (chained, iv, encrypt): (&dyn rijndael::Mode, [u8; 16], bool) = match mode {
        Mode::EcbEncrypt => return run_ecb_span(backend, Direction::Encrypt, data),
        Mode::EcbDecrypt => return run_ecb_span(backend, Direction::Decrypt, data),
        Mode::Ctr(nonce) => return run_ctr_span(backend, &nonce, 0, data),
        Mode::CbcEncrypt(iv) => (&Cbc, iv, true),
        Mode::CbcDecrypt(iv) => (&Cbc, iv, false),
        Mode::CfbEncrypt(iv) => (&Cfb, iv, true),
        Mode::CfbDecrypt(iv) => (&Cfb, iv, false),
        Mode::Ofb(iv) => (&Ofb, iv, true),
    };
    let iv = Iv::from(iv);
    let adapter = BackendCipher::new(backend);
    let result = if encrypt {
        chained.encrypt_in_place(&adapter, &iv, data)
    } else {
        chained.decrypt_in_place(&adapter, &iv, data)
    };
    // A backend fault trumps the mode result: the mode layer saw stale
    // bytes after the latched fault, not an input problem.
    if let Some(e) = adapter.fault() {
        return Err(e.into());
    }
    result.expect("mode inputs validated at submission");
    Ok(())
}

impl fmt::Debug for Engine {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Engine")
            .field("cores", &self.cores())
            .field("queued", &self.queue.len())
            .field("capacity", &self.capacity)
            .finish()
    }
}

impl Drop for Engine {
    /// Returns queued-but-never-run jobs to the depth gauge and pushes
    /// the final counter deltas, so a shared registry stays coherent
    /// after per-session engines come and go.
    fn drop(&mut self) {
        if !self.queue.is_empty() {
            self.queue_depth.sub(self.queue.len() as i64);
        }
        self.sync_telemetry();
    }
}

/// Adapts one `&mut dyn Backend` to the shared-reference [`BlockCipher`]
/// trait the mode implementations expect. The modes never see errors, so
/// a backend fault is latched here: the first error is recorded, later
/// blocks are skipped, and the caller checks [`BackendCipher::fault`]
/// after the mode pass.
struct BackendCipher<'a> {
    backend: RefCell<&'a mut dyn Backend>,
    fault: Cell<Option<BackendError>>,
}

impl<'a> BackendCipher<'a> {
    fn new(backend: &'a mut dyn Backend) -> Self {
        BackendCipher {
            backend: RefCell::new(backend),
            fault: Cell::new(None),
        }
    }

    fn fault(&self) -> Option<BackendError> {
        self.fault.get()
    }

    fn process(&self, block: &mut [u8], dir: Direction) {
        if self.fault.get().is_some() {
            return;
        }
        let mut buf: [u8; 16] = block.try_into().expect("modes pass whole blocks");
        match self.backend.borrow_mut().process_block(&mut buf, dir) {
            Ok(()) => block.copy_from_slice(&buf),
            Err(e) => self.fault.set(Some(e)),
        }
    }
}

impl BlockCipher for BackendCipher<'_> {
    fn block_len(&self) -> usize {
        BLOCK
    }

    fn encrypt_in_place(&self, block: &mut [u8]) {
        self.process(block, Direction::Encrypt);
    }

    fn decrypt_in_place(&self, block: &mut [u8]) {
        self.process(block, Direction::Decrypt);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aes_ip::core::LATENCY_CYCLES;
    use rijndael::modes::Ecb;
    use rijndael::Aes128;

    const KEY: [u8; 16] = [
        0x2B, 0x7E, 0x15, 0x16, 0x28, 0xAE, 0xD2, 0xA6, 0xAB, 0xF7, 0x15, 0x88, 0x09, 0xCF, 0x4F,
        0x3C,
    ];

    fn sample(len: usize) -> Vec<u8> {
        (0..len).map(|i| (i * 7 + 3) as u8).collect()
    }

    #[test]
    fn shares_split_evenly() {
        assert_eq!(Engine::shares(10, 3), vec![4, 3, 3]);
        assert_eq!(Engine::shares(2, 4), vec![1, 1, 0, 0]);
        assert_eq!(Engine::shares(0, 2), vec![0, 0]);
        assert_eq!(Engine::shares(8, 1), vec![8]);
    }

    #[test]
    fn shares_batched_deals_whole_granules_and_trims_the_tail() {
        // Whole granules spread evenly, exact total preserved.
        assert_eq!(Engine::shares_batched(24, 3), vec![8, 8, 8]);
        assert_eq!(Engine::shares_batched(64, 3), vec![24, 24, 16]);
        // Padding comes back out of the last non-empty share.
        assert_eq!(Engine::shares_batched(7, 3), vec![7, 0, 0]);
        assert_eq!(Engine::shares_batched(11, 4), vec![8, 3, 0, 0]);
        assert_eq!(Engine::shares_batched(65, 2), vec![40, 25]);
        assert_eq!(Engine::shares_batched(0, 2), vec![0, 0]);
        // Every share except the trimmed one is a granule multiple.
        for (n, k) in [(123, 5), (8, 4), (100, 3)] {
            let shares = Engine::shares_batched(n, k);
            assert_eq!(shares.iter().sum::<usize>(), n, "shares_batched({n},{k})");
            let ragged = shares.iter().filter(|s| *s % 8 != 0).count();
            assert!(ragged <= 1, "shares_batched({n},{k}) = {shares:?}");
        }
    }

    #[test]
    fn ecb_sharded_across_cores_matches_reference() {
        let mut engine = Engine::with_farm(&KEY, &[BackendSpec::EncryptCore; 3], 4);
        let data = sample(24 * 16);
        let id = engine.try_submit(Mode::EcbEncrypt, data.clone()).unwrap();
        let out = engine.run();
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].id, id);

        let mut expected = data;
        Ecb::encrypt(&Aes128::new(&KEY), &mut expected).unwrap();
        assert_eq!(out[0].data.as_ref().unwrap(), &expected);

        // All three cores took part: one full 8-block granule each.
        let s = engine.stats();
        let blocks: Vec<u64> = s.per_core.iter().map(|c| c.blocks).collect();
        assert_eq!(blocks, vec![8, 8, 8]);
    }

    #[test]
    fn ctr_sharded_across_cores_matches_reference_including_partial_tail() {
        let mut engine = Engine::with_farm(&KEY, &[BackendSpec::EncDecCore; 4], 4);
        let nonce = [0xF0u8; 16];
        let data = sample(10 * 16 + 5);
        engine.try_submit(Mode::Ctr(nonce), data.clone()).unwrap();
        let out = engine.run();

        let mut expected = data;
        Ctr::apply(&Aes128::new(&KEY), &nonce, &mut expected);
        assert_eq!(out[0].data.as_ref().unwrap(), &expected);
    }

    #[test]
    fn chained_modes_run_on_one_core_and_match_reference() {
        let reference = Aes128::new(&KEY);
        let iv = [0x11u8; 16];
        for (mode, apply) in [
            (
                Mode::CbcEncrypt(iv),
                Box::new(|d: &mut [u8]| Cbc::encrypt(&reference, &iv, d).unwrap())
                    as Box<dyn Fn(&mut [u8])>,
            ),
            (
                Mode::CbcDecrypt(iv),
                Box::new(|d: &mut [u8]| Cbc::decrypt(&reference, &iv, d).unwrap()),
            ),
            (
                Mode::CfbEncrypt(iv),
                Box::new(|d: &mut [u8]| Cfb::encrypt(&reference, &iv, d)),
            ),
            (
                Mode::CfbDecrypt(iv),
                Box::new(|d: &mut [u8]| Cfb::decrypt(&reference, &iv, d)),
            ),
            (
                Mode::Ofb(iv),
                Box::new(|d: &mut [u8]| Ofb::apply(&reference, &iv, d)),
            ),
        ] {
            let len = if mode.requires_full_blocks() {
                5 * 16
            } else {
                77
            };
            let mut engine = Engine::with_farm(&KEY, &[BackendSpec::EncDecCore; 3], 2);
            let data = sample(len);
            engine.try_submit(mode, data.clone()).unwrap();
            let out = engine.run();

            let mut expected = data;
            apply(&mut expected);
            assert_eq!(out[0].data.as_ref().unwrap(), &expected, "{mode}");

            // Exactly one core did all the work.
            let active = engine
                .stats()
                .per_core
                .iter()
                .filter(|c| c.blocks > 0)
                .count();
            assert_eq!(active, 1, "{mode} must stay on a single core");
        }
    }

    #[test]
    fn backpressure_rejects_submissions_past_capacity() {
        let mut engine = Engine::with_farm(&KEY, &[BackendSpec::Software], 2);
        engine.try_submit(Mode::EcbEncrypt, sample(16)).unwrap();
        engine.try_submit(Mode::Ctr([0; 16]), sample(5)).unwrap();
        let err = engine
            .try_submit(Mode::Ctr([0; 16]), sample(5))
            .unwrap_err();
        assert_eq!(err, SubmitError::Busy { capacity: 2 });

        // Draining frees the queue.
        assert_eq!(engine.run().len(), 2);
        assert!(engine.try_submit(Mode::Ctr([0; 16]), sample(5)).is_ok());
    }

    #[test]
    fn engine_is_send() {
        fn assert_send<T: Send>() {}
        assert_send::<Engine>();
        assert_send::<JobOutput>();
        assert_send::<SubmitError>();
    }

    #[test]
    fn backpressure_with_mixed_modes_drains_and_resubmits_in_order() {
        // Queue-full / drain / resubmit across a mix of parallel (ECB,
        // CTR) and chained (CBC, OFB) jobs: the submission boundary must
        // not care which scheduler path a queued job will take.
        let mut engine = Engine::with_farm(&KEY, &[BackendSpec::EncDecCore; 2], 3);
        let a = engine.try_submit(Mode::EcbEncrypt, sample(4 * 16)).unwrap();
        let b = engine
            .try_submit(Mode::CbcEncrypt([1; 16]), sample(2 * 16))
            .unwrap();
        let c = engine.try_submit(Mode::Ctr([2; 16]), sample(33)).unwrap();

        // Full: both a parallel and a chained submission bounce.
        assert_eq!(
            engine.try_submit(Mode::Ctr([3; 16]), sample(5)),
            Err(SubmitError::Busy { capacity: 3 })
        );
        assert_eq!(
            engine.try_submit(Mode::Ofb([4; 16]), sample(5)),
            Err(SubmitError::Busy { capacity: 3 })
        );
        // A rejected submission must not burn a job id.
        assert_eq!(engine.queued(), 3);

        // Drain: outputs come back in submission order, all successful.
        let out = engine.run();
        assert_eq!(out.iter().map(|o| o.id).collect::<Vec<_>>(), vec![a, b, c]);
        assert!(out.iter().all(|o| o.data.is_ok()));
        assert_eq!(engine.queued(), 0);

        // Resubmit: ids keep ascending past the drained batch and a full
        // second cycle (mixed modes again) drains in order too.
        let d = engine.try_submit(Mode::Ofb([5; 16]), sample(7)).unwrap();
        let e = engine.try_submit(Mode::EcbDecrypt, sample(16)).unwrap();
        assert!(c < d && d < e);
        let out = engine.run();
        assert_eq!(out.iter().map(|o| o.id).collect::<Vec<_>>(), vec![d, e]);
        assert!(out.iter().all(|o| o.data.is_ok()));
    }

    #[test]
    fn ragged_ecb_is_rejected_at_submission() {
        let mut engine = Engine::with_farm(&KEY, &[BackendSpec::Software], 2);
        let err = engine.try_submit(Mode::EcbEncrypt, sample(17)).unwrap_err();
        assert_eq!(err, SubmitError::RaggedLength { len: 17 });
        assert_eq!(engine.queued(), 0, "rejected jobs hold no queue slot");
        // CTR streams, so ragged lengths are fine.
        assert!(engine.try_submit(Mode::Ctr([0; 16]), sample(17)).is_ok());
    }

    #[test]
    fn decrypt_job_on_encrypt_only_farm_reports_instead_of_panicking() {
        let mut engine = Engine::with_farm(&KEY, &[BackendSpec::EncryptCore; 2], 2);
        engine.try_submit(Mode::EcbDecrypt, sample(32)).unwrap();
        let out = engine.run();
        assert_eq!(
            out[0].data,
            Err(JobError::NoCapableCore {
                dir: Direction::Decrypt
            })
        );
        // But CTR decryption runs fine on the forward datapath.
        engine.try_submit(Mode::Ctr([3; 16]), sample(32)).unwrap();
        assert!(engine.run()[0].data.is_ok());
    }

    #[test]
    fn mixed_farm_routes_around_incapable_cores() {
        // Decrypt-only core must be skipped for encrypt work and vice
        // versa; output must still match the reference.
        let specs = [
            BackendSpec::EncryptCore,
            BackendSpec::DecryptCore,
            BackendSpec::Software,
        ];
        let mut engine = Engine::with_farm(&KEY, &specs, 4);
        let data = sample(6 * 16);
        engine.try_submit(Mode::EcbEncrypt, data.clone()).unwrap();
        engine.try_submit(Mode::EcbDecrypt, data.clone()).unwrap();
        let out = engine.run();

        let reference = Aes128::new(&KEY);
        let mut enc = data.clone();
        Ecb::encrypt(&reference, &mut enc).unwrap();
        let mut dec = data;
        Ecb::decrypt(&reference, &mut dec).unwrap();
        assert_eq!(out[0].data.as_ref().unwrap(), &enc);
        assert_eq!(out[1].data.as_ref().unwrap(), &dec);

        let s = engine.stats();
        // The encrypt job shards over {ip-encrypt, soft-ref}, the decrypt
        // job over {ip-decrypt, soft-ref}. Six blocks fit inside a single
        // 8-block granule, so the granule planner hands the whole job to
        // the first eligible core and the software core stays idle.
        let by_name: Vec<(&str, u64)> = s
            .per_core
            .iter()
            .map(|c| (c.name.as_str(), c.blocks))
            .collect();
        assert_eq!(
            by_name,
            vec![("ip-encrypt", 6), ("ip-decrypt", 6), ("soft-ref", 0)]
        );
    }

    #[test]
    fn ctr_wall_cycles_shrink_as_cores_are_added() {
        let blocks = 64usize;
        let mut last = u64::MAX;
        for cores in 1..=4 {
            let mut engine = Engine::with_farm(&KEY, &vec![BackendSpec::EncryptCore; cores], 2);
            engine
                .try_submit(Mode::Ctr([9; 16]), sample(blocks * 16))
                .unwrap();
            engine.run();
            let s = engine.stats();
            assert_eq!(s.total_blocks(), blocks as u64);
            // Each core's share costs 1 load edge + 50/block; shares are
            // dealt in 8-block granules (64 blocks = 8 granules).
            let biggest_share = (blocks.div_ceil(8).div_ceil(cores) * 8) as u64;
            assert_eq!(s.wall_cycles(), 1 + biggest_share * LATENCY_CYCLES);
            assert!(
                s.wall_cycles() < last,
                "{cores} cores must beat {}",
                cores - 1
            );
            assert!(
                s.min_occupancy_pct() >= 90.0,
                "cores must stay saturated, got {:.1}%",
                s.min_occupancy_pct()
            );
            last = s.wall_cycles();
        }
    }

    #[test]
    fn least_loaded_core_wins_chained_work() {
        let mut engine = Engine::with_farm(&KEY, &[BackendSpec::EncDecCore; 2], 4);
        // Load core 0 with a chained job, then submit another: it must
        // land on core 1 (cheaper virtual clock).
        engine
            .try_submit(Mode::CbcEncrypt([0; 16]), sample(4 * 16))
            .unwrap();
        engine
            .try_submit(Mode::CbcEncrypt([0; 16]), sample(4 * 16))
            .unwrap();
        engine.run();
        let s = engine.stats();
        assert_eq!(s.per_core[0].blocks, 4);
        assert_eq!(s.per_core[1].blocks, 4);
    }

    #[test]
    fn empty_buffer_jobs_complete_without_work() {
        let mut engine = Engine::with_farm(&KEY, &[BackendSpec::EncDecCore], 4);
        for mode in [
            Mode::EcbEncrypt,
            Mode::Ctr([0; 16]),
            Mode::CbcEncrypt([0; 16]),
        ] {
            engine.try_submit(mode, Vec::new()).unwrap();
        }
        for out in engine.run() {
            assert_eq!(out.data.unwrap(), Vec::<u8>::new());
        }
        assert_eq!(engine.stats().total_blocks(), 0);
    }

    #[test]
    fn job_ids_are_unique_and_ordered() {
        let mut engine = Engine::with_farm(&KEY, &[BackendSpec::Software], 8);
        let a = engine.try_submit(Mode::Ctr([0; 16]), sample(1)).unwrap();
        let b = engine.try_submit(Mode::Ctr([0; 16]), sample(1)).unwrap();
        assert!(a < b);
        let out = engine.run();
        assert_eq!(out[0].id, a);
        assert_eq!(out[1].id, b);
        assert_eq!(a.to_string(), "job#0");
    }

    #[test]
    fn submit_errors_format() {
        assert!(SubmitError::Busy { capacity: 2 }
            .to_string()
            .contains("full"));
        assert!(SubmitError::RaggedLength { len: 17 }
            .to_string()
            .contains("17"));
        assert!(SubmitError::BadIv { len: 4 }.to_string().contains("4"));
        let e = JobError::NoCapableCore {
            dir: Direction::Decrypt,
        };
        assert_eq!(e.to_string(), "no core in the farm can decrypt");
    }

    #[test]
    fn builder_publishes_every_instrument_into_a_shared_registry() {
        let reg = Registry::new();
        let mut engine = EngineBuilder::new()
            .cores(&[BackendSpec::EncryptCore; 2])
            .capacity(1)
            .registry(reg.clone())
            .build(&KEY);
        engine.try_submit(Mode::EcbEncrypt, sample(8 * 16)).unwrap();
        // Queue full: the rejection is counted, and the accepted job is
        // visible on the depth gauge before run() drains it.
        assert_eq!(
            engine.try_submit(Mode::EcbEncrypt, sample(16)),
            Err(SubmitError::Busy { capacity: 1 })
        );
        assert_eq!(
            engine.try_submit(Mode::EcbEncrypt, sample(17)),
            Err(SubmitError::Busy { capacity: 1 })
        );
        assert_eq!(reg.snapshot().gauge("engine.queue.depth"), Some(1));
        engine.run();

        let snap = engine.snapshot();
        assert_eq!(snap.counter("engine.submit.accepted"), Some(1));
        assert_eq!(snap.counter("engine.submit.busy"), Some(2));
        assert_eq!(snap.counter("engine.submit.ragged"), Some(0));
        assert_eq!(snap.counter("engine.jobs.completed"), Some(1));
        assert_eq!(snap.counter("engine.jobs.failed"), Some(0));
        assert_eq!(snap.gauge("engine.queue.depth"), Some(0));
        assert_eq!(snap.gauge("engine.queue.capacity"), Some(1));

        // Latency: 8 blocks on one core = 1 load edge + 8 × 50 cycles.
        let lat = snap.histogram("engine.job.latency_cycles").unwrap();
        assert_eq!((lat.count, lat.sum), (1, 1 + 8 * LATENCY_CYCLES));
        // One occupancy sample per core that moved cycles this sync.
        assert!(snap.histogram("engine.core.occupancy_bp").unwrap().count >= 1);

        // Per-core counters reassemble into the same farm stats, via the
        // engine accessor and via the shared registry alike.
        let stats = FarmStats::from_snapshot(&snap);
        assert_eq!(stats.total_blocks(), 8);
        assert_eq!(stats.per_core.len(), 2);
        assert_eq!(engine.registry().snapshot().counter_sum("engine.core."), {
            snap.counter_sum("engine.core.")
        });
    }

    #[test]
    fn ragged_submissions_are_counted() {
        let mut engine = Engine::with_farm(&KEY, &[BackendSpec::Software], 2);
        let _ = engine.try_submit(Mode::EcbEncrypt, sample(17));
        assert_eq!(engine.snapshot().counter("engine.submit.ragged"), Some(1));
    }

    #[test]
    fn failed_jobs_count_separately_from_completed_ones() {
        let mut engine = Engine::with_farm(&KEY, &[BackendSpec::EncryptCore], 4);
        engine.try_submit(Mode::EcbDecrypt, sample(16)).unwrap();
        engine.try_submit(Mode::EcbEncrypt, sample(16)).unwrap();
        engine.run();
        let snap = engine.snapshot();
        assert_eq!(snap.counter("engine.jobs.failed"), Some(1));
        assert_eq!(snap.counter("engine.jobs.completed"), Some(1));
    }

    #[test]
    fn engines_sharing_a_registry_aggregate_core_counters() {
        let reg = Registry::new();
        for _ in 0..2 {
            let mut e = EngineBuilder::new()
                .core(BackendSpec::Software)
                .capacity(2)
                .registry(reg.clone())
                .build(&KEY);
            e.try_submit(Mode::EcbEncrypt, sample(4 * 16)).unwrap();
            e.run();
        }
        // Same farm layout, same instrument names: the two engines'
        // delta-pushed counters sum instead of clobbering each other.
        let stats = FarmStats::from_snapshot(&reg.snapshot());
        assert_eq!(stats.total_blocks(), 8);
        assert_eq!(reg.snapshot().counter("engine.jobs.completed"), Some(2));
    }

    #[test]
    fn dropping_an_engine_with_queued_jobs_restores_the_depth_gauge() {
        let reg = Registry::new();
        {
            let mut engine = EngineBuilder::new()
                .core(BackendSpec::Software)
                .capacity(4)
                .registry(reg.clone())
                .build(&KEY);
            engine.try_submit(Mode::Ctr([0; 16]), sample(5)).unwrap();
            engine.try_submit(Mode::Ctr([0; 16]), sample(5)).unwrap();
            assert_eq!(reg.snapshot().gauge("engine.queue.depth"), Some(2));
        }
        assert_eq!(reg.snapshot().gauge("engine.queue.depth"), Some(0));
    }

    #[test]
    fn prekeyed_backends_join_after_spec_built_slots() {
        let soft = BackendSpec::Software.build(&KEY);
        let mut engine = EngineBuilder::new()
            .core(BackendSpec::EncryptCore)
            .backend(soft)
            .capacity(2)
            .build(&KEY);
        assert_eq!(engine.cores(), 2);
        engine
            .try_submit(Mode::EcbEncrypt, sample(16 * 16))
            .unwrap();
        assert!(engine.run()[0].data.is_ok());
        let names: Vec<String> = engine
            .stats()
            .per_core
            .iter()
            .map(|c| c.name.clone())
            .collect();
        assert_eq!(
            names,
            vec!["ip-encrypt".to_string(), "soft-ref".to_string()]
        );
    }

    #[test]
    #[should_panic(expected = "at least one backend")]
    fn builder_panics_on_an_empty_farm() {
        let _ = EngineBuilder::new().build(&KEY);
    }

    #[test]
    #[should_panic(expected = "zero-capacity")]
    fn builder_panics_on_a_zero_capacity_queue() {
        let _ = EngineBuilder::new()
            .core(BackendSpec::Software)
            .capacity(0)
            .build(&KEY);
    }

    /// A mock whose setup-cycle counter outruns its total-cycle counter
    /// between telemetry syncs — the adversarial snapshot shape that used
    /// to underflow the occupancy basis in [`Engine::sync_telemetry`]
    /// (`setup_delta > cycle_delta` ⇒ `op_delta` wrapped).
    struct AdversarialCounters {
        blocks: u64,
        cycles: u64,
        setup: u64,
    }

    impl Backend for AdversarialCounters {
        fn name(&self) -> &'static str {
            "mock-adversarial"
        }

        fn supports(&self, _dir: Direction) -> bool {
            true
        }

        fn process_block(
            &mut self,
            _block: &mut [u8; 16],
            _dir: Direction,
        ) -> Result<(), BackendError> {
            // Each block grows setup cycles 10x faster than total cycles,
            // so every sync observes setup_delta > cycle_delta.
            self.blocks += 1;
            self.cycles += 2;
            self.setup += 20;
            Ok(())
        }

        fn process_stream(
            &mut self,
            blocks: &mut [[u8; 16]],
            dir: Direction,
        ) -> Result<(), BackendError> {
            for block in blocks.iter_mut() {
                self.process_block(block, dir)?;
            }
            Ok(())
        }

        fn blocks(&self) -> u64 {
            self.blocks
        }

        fn cycles(&self) -> u64 {
            self.cycles
        }

        fn setup_cycles(&self) -> u64 {
            self.setup
        }

        fn busy_cycles(&self) -> u64 {
            self.blocks
        }
    }

    #[test]
    fn occupancy_survives_setup_delta_exceeding_cycle_delta() {
        let reg = telemetry::Registry::new();
        let mut engine = EngineBuilder::new()
            .backend(Box::new(AdversarialCounters {
                blocks: 0,
                cycles: 0,
                setup: 0,
            }))
            .registry(reg.clone())
            .build(&KEY);
        // Two jobs, two syncs: each sync sees cycle_delta=2·n while
        // setup_delta=20·n. Before the fix this underflowed (debug panic,
        // or an absurd occupancy basis in release).
        for _ in 0..2 {
            engine.try_submit(Mode::EcbEncrypt, sample(16)).unwrap();
            let out = engine.run();
            assert!(out[0].data.is_ok());
        }
        let snap = engine.snapshot();
        assert_eq!(
            snap.counter("engine.core.0.mock-adversarial.setup_cycles"),
            Some(40)
        );
        // op_delta saturates to zero, so no occupancy sample is recorded
        // (rather than a wrapped-u64 basis-point figure).
        let occupancy = snap
            .histogram("engine.core.occupancy_bp")
            .expect("histogram registered");
        assert_eq!(occupancy.count, 0);
    }
}

//! Job scheduling across a farm of [`Backend`]s.
//!
//! The paper sells the IP on *area*, not speed: one core occupies ~10% of
//! an EP20K300E, so a system integrator can stamp down several and scale
//! throughput linearly. The [`Engine`] models that deployment. Jobs are
//! whole mode operations (ECB/CBC/CTR/CFB/OFB over a byte buffer); the
//! scheduler shards counter-mode and ECB work evenly across every capable
//! core (each core pipelines its share through the decoupled bus at one
//! block per latency period) and routes chained modes — where block `i+1`
//! depends on block `i` — to the single least-loaded capable core.
//!
//! Submission is backpressured: the queue is bounded and
//! [`Engine::try_submit`] returns [`SubmitError::Busy`] instead of
//! growing without limit, mirroring the `data_ok` handshake one level up.

use std::cell::{Cell, RefCell};
use std::collections::VecDeque;
use std::fmt;

use aes_ip::core::Direction;
use rijndael::modes::{Cbc, Cfb, Ctr, Ofb};
use rijndael::BlockCipher;

use crate::backend::{Backend, BackendError, BackendSpec};
use crate::metrics::{CoreMetrics, EngineMetrics};

/// AES block size in bytes.
const BLOCK: usize = 16;

/// A complete cipher-mode operation over one byte buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mode {
    /// ECB encryption (parallel; requires whole blocks).
    EcbEncrypt,
    /// ECB decryption (parallel; requires whole blocks).
    EcbDecrypt,
    /// CBC encryption (chained; requires whole blocks).
    CbcEncrypt(
        /// Initialisation vector.
        [u8; 16],
    ),
    /// CBC decryption (chained here; requires whole blocks).
    CbcDecrypt(
        /// Initialisation vector.
        [u8; 16],
    ),
    /// CTR keystream application — encryption and decryption are the same
    /// operation (parallel; any length).
    Ctr(
        /// Initial counter block (NIST SP 800-38A convention).
        [u8; 16],
    ),
    /// CFB encryption (chained; any length).
    CfbEncrypt(
        /// Initialisation vector.
        [u8; 16],
    ),
    /// CFB decryption (chained here; any length).
    CfbDecrypt(
        /// Initialisation vector.
        [u8; 16],
    ),
    /// OFB keystream application — self-inverse (chained; any length).
    Ofb(
        /// Initialisation vector.
        [u8; 16],
    ),
}

impl Mode {
    /// Which core datapath the mode exercises. Only CBC decryption and
    /// ECB decryption need the inverse cipher; CTR, CFB and OFB run the
    /// *forward* datapath in both directions, so they schedule onto
    /// encrypt-only cores.
    #[must_use]
    pub fn direction(self) -> Direction {
        match self {
            Mode::EcbDecrypt | Mode::CbcDecrypt(_) => Direction::Decrypt,
            _ => Direction::Encrypt,
        }
    }

    /// `true` when blocks are independent and the job can be sharded
    /// across several cores.
    #[must_use]
    pub fn is_parallel(self) -> bool {
        matches!(self, Mode::EcbEncrypt | Mode::EcbDecrypt | Mode::Ctr(_))
    }

    /// `true` when the buffer must be a whole number of blocks.
    #[must_use]
    pub fn requires_full_blocks(self) -> bool {
        matches!(
            self,
            Mode::EcbEncrypt | Mode::EcbDecrypt | Mode::CbcEncrypt(_) | Mode::CbcDecrypt(_)
        )
    }
}

impl fmt::Display for Mode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Mode::EcbEncrypt => "ecb-encrypt",
            Mode::EcbDecrypt => "ecb-decrypt",
            Mode::CbcEncrypt(_) => "cbc-encrypt",
            Mode::CbcDecrypt(_) => "cbc-decrypt",
            Mode::Ctr(_) => "ctr",
            Mode::CfbEncrypt(_) => "cfb-encrypt",
            Mode::CfbDecrypt(_) => "cfb-decrypt",
            Mode::Ofb(_) => "ofb",
        };
        f.write_str(s)
    }
}

/// Opaque handle identifying a submitted job in [`Engine::run`] output.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct JobId(u64);

impl fmt::Display for JobId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "job#{}", self.0)
    }
}

/// Rejection at the submission boundary (the job never enters the queue).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SubmitError {
    /// The bounded queue is full — drain with [`Engine::run`] and retry.
    Busy {
        /// The queue capacity that was exhausted.
        capacity: usize,
    },
    /// The mode requires whole 16-byte blocks but the buffer is ragged.
    RaggedLength {
        /// The offending buffer length.
        len: usize,
    },
}

impl fmt::Display for SubmitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SubmitError::Busy { capacity } => {
                write!(f, "engine queue full ({capacity} jobs); run() to drain")
            }
            SubmitError::RaggedLength { len } => {
                write!(f, "mode requires whole 16-byte blocks, got {len} bytes")
            }
        }
    }
}

impl std::error::Error for SubmitError {}

/// Failure of one accepted job (other jobs in the batch still run).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobError {
    /// No core in the farm has a datapath for the job's direction.
    NoCapableCore {
        /// The direction nobody supports.
        dir: Direction,
    },
    /// A backend faulted mid-job.
    Backend(BackendError),
}

impl fmt::Display for JobError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JobError::NoCapableCore { dir } => {
                let verb = match dir {
                    Direction::Encrypt => "encrypt",
                    Direction::Decrypt => "decrypt",
                };
                write!(f, "no core in the farm can {verb}")
            }
            JobError::Backend(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for JobError {}

impl From<BackendError> for JobError {
    fn from(e: BackendError) -> Self {
        JobError::Backend(e)
    }
}

/// One finished job from [`Engine::run`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobOutput {
    /// The handle [`Engine::try_submit`] returned for this job.
    pub id: JobId,
    /// The processed buffer, or why the job failed.
    pub data: Result<Vec<u8>, JobError>,
}

struct QueuedJob {
    id: JobId,
    mode: Mode,
    data: Vec<u8>,
}

/// Multi-core throughput engine: a farm of backends, a bounded job
/// queue, and the shard/route scheduler.
///
/// # Examples
///
/// ```
/// use engine::{BackendSpec, Engine, Mode};
///
/// let key = [0x2B; 16];
/// let mut engine = Engine::with_farm(&key, &[BackendSpec::EncDecCore; 2], 8);
/// let id = engine.try_submit(Mode::Ctr([0; 16]), b"attack at dawn".to_vec()).unwrap();
/// let out = engine.run();
/// assert_eq!(out[0].id, id);
/// let ciphertext = out[0].data.clone().unwrap();
///
/// // CTR is self-inverse: a second pass recovers the plaintext.
/// engine.try_submit(Mode::Ctr([0; 16]), ciphertext).unwrap();
/// assert_eq!(engine.run()[0].data.clone().unwrap(), b"attack at dawn");
/// ```
pub struct Engine {
    workers: Vec<Box<dyn Backend>>,
    queue: VecDeque<QueuedJob>,
    capacity: usize,
    next_id: u64,
}

impl Engine {
    /// Builds an engine over an explicit set of already-keyed backends.
    ///
    /// # Panics
    ///
    /// Panics on an empty farm or a zero-capacity queue — both would make
    /// every submission unroutable.
    #[must_use]
    pub fn new(workers: Vec<Box<dyn Backend>>, capacity: usize) -> Self {
        assert!(!workers.is_empty(), "an engine needs at least one backend");
        assert!(capacity > 0, "a zero-capacity queue rejects every job");
        Engine {
            workers,
            queue: VecDeque::new(),
            capacity,
            next_id: 0,
        }
    }

    /// Builds a farm from `specs`, loading `key` into every member (IP
    /// cores pay their real key-setup cycles here).
    #[must_use]
    pub fn with_farm(key: &[u8; 16], specs: &[BackendSpec], capacity: usize) -> Self {
        Engine::new(specs.iter().map(|s| s.build(key)).collect(), capacity)
    }

    /// Number of farm slots.
    #[must_use]
    pub fn cores(&self) -> usize {
        self.workers.len()
    }

    /// Jobs waiting in the queue.
    #[must_use]
    pub fn queued(&self) -> usize {
        self.queue.len()
    }

    /// The queue bound.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Enqueues a mode operation over `data`, applying backpressure.
    ///
    /// # Errors
    ///
    /// * [`SubmitError::Busy`] when the queue is at capacity;
    /// * [`SubmitError::RaggedLength`] when an ECB/CBC job is not a whole
    ///   number of blocks (caught here, before the job holds a slot).
    pub fn try_submit(&mut self, mode: Mode, data: Vec<u8>) -> Result<JobId, SubmitError> {
        if self.queue.len() >= self.capacity {
            return Err(SubmitError::Busy {
                capacity: self.capacity,
            });
        }
        if mode.requires_full_blocks() && !data.len().is_multiple_of(BLOCK) {
            return Err(SubmitError::RaggedLength { len: data.len() });
        }
        let id = JobId(self.next_id);
        self.next_id += 1;
        self.queue.push_back(QueuedJob { id, mode, data });
        Ok(id)
    }

    /// Drains the queue in submission order, returning one output per
    /// job. A job that faults reports its [`JobError`]; the rest of the
    /// batch still runs.
    pub fn run(&mut self) -> Vec<JobOutput> {
        let mut outputs = Vec::with_capacity(self.queue.len());
        while let Some(job) = self.queue.pop_front() {
            let QueuedJob { id, mode, mut data } = job;
            let data = match self.dispatch(mode, &mut data) {
                Ok(()) => Ok(data),
                Err(e) => Err(e),
            };
            outputs.push(JobOutput { id, data });
        }
        outputs
    }

    /// Snapshots per-core counters and the farm aggregate.
    #[must_use]
    pub fn metrics(&self) -> EngineMetrics {
        let per_core = self
            .workers
            .iter()
            .map(|w| {
                let operation_cycles = w.cycles().saturating_sub(w.setup_cycles());
                let occupancy_pct = if operation_cycles == 0 {
                    100.0
                } else {
                    100.0 * w.busy_cycles() as f64 / operation_cycles as f64
                };
                let cycles_per_block = if w.blocks() == 0 {
                    0.0
                } else {
                    operation_cycles as f64 / w.blocks() as f64
                };
                CoreMetrics {
                    name: w.name(),
                    blocks: w.blocks(),
                    cycles: w.cycles(),
                    operation_cycles,
                    busy_cycles: w.busy_cycles(),
                    occupancy_pct,
                    cycles_per_block,
                }
            })
            .collect();
        EngineMetrics::from_cores(per_core)
    }

    /// Indices of workers that can process `dir`.
    fn eligible(&self, dir: Direction) -> Vec<usize> {
        (0..self.workers.len())
            .filter(|&i| self.workers[i].supports(dir))
            .collect()
    }

    fn dispatch(&mut self, mode: Mode, data: &mut [u8]) -> Result<(), JobError> {
        let dir = mode.direction();
        let eligible = self.eligible(dir);
        if eligible.is_empty() {
            return Err(JobError::NoCapableCore { dir });
        }
        match mode {
            Mode::EcbEncrypt | Mode::EcbDecrypt => self.run_ecb(&eligible, dir, data),
            Mode::Ctr(nonce) => self.run_ctr(&eligible, &nonce, data),
            Mode::CbcEncrypt(iv) => self.run_chained(&eligible, dir, data, |c, d| {
                Cbc::encrypt(c, &iv, d).expect("length validated at submission");
            }),
            Mode::CbcDecrypt(iv) => self.run_chained(&eligible, dir, data, |c, d| {
                Cbc::decrypt(c, &iv, d).expect("length validated at submission");
            }),
            Mode::CfbEncrypt(iv) => self.run_chained(&eligible, dir, data, |c, d| {
                Cfb::encrypt(c, &iv, d);
            }),
            Mode::CfbDecrypt(iv) => self.run_chained(&eligible, dir, data, |c, d| {
                Cfb::decrypt(c, &iv, d);
            }),
            Mode::Ofb(iv) => self.run_chained(&eligible, dir, data, |c, d| {
                Ofb::apply(c, &iv, d);
            }),
        }
    }

    /// Evenly shards `n` items across `k` shares: the first `n % k`
    /// shares get one extra item.
    fn shares(n: usize, k: usize) -> Vec<usize> {
        let base = n / k;
        (0..k).map(|i| base + usize::from(i < n % k)).collect()
    }

    /// Shards `n` blocks across `k` shares in multiples of the bitsliced
    /// 8-block granule: whole granules are distributed evenly, then the
    /// last non-empty share gives back the padding so the total is
    /// exactly `n`. Every share but possibly the last is a multiple of 8,
    /// which keeps the bitsliced backend's passes full; only one core
    /// ever sees a ragged (padded) granule.
    fn shares_batched(n: usize, k: usize) -> Vec<usize> {
        const GRANULE: usize = 8;
        let mut out: Vec<usize> = Self::shares(n.div_ceil(GRANULE), k)
            .into_iter()
            .map(|g| g * GRANULE)
            .collect();
        let mut excess = out.iter().sum::<usize>() - n;
        for share in out.iter_mut().rev() {
            if *share > 0 {
                *share -= excess;
                excess = 0;
                break;
            }
        }
        debug_assert_eq!(excess, 0);
        out
    }

    /// ECB: independent whole blocks, sharded across every eligible core
    /// in granule multiples and submitted through each core's widest
    /// batch path — in place, no staging copies.
    fn run_ecb(
        &mut self,
        eligible: &[usize],
        dir: Direction,
        data: &mut [u8],
    ) -> Result<(), JobError> {
        let (blocks, rest) = data.as_chunks_mut::<BLOCK>();
        debug_assert!(rest.is_empty(), "length validated at submission");
        let mut offset = 0;
        for (&w, share) in eligible
            .iter()
            .zip(Self::shares_batched(blocks.len(), eligible.len()))
        {
            if share == 0 {
                continue;
            }
            self.workers[w].process_batch(&mut blocks[offset..offset + share], dir)?;
            offset += share;
        }
        Ok(())
    }

    /// CTR: each core generates the keystream for its contiguous span of
    /// counter values (SP 800-38A increment, so spans are just offsets)
    /// and XORs it into its span of the buffer. Counter blocks are
    /// precomputed per shard with [`Ctr::fill_counter_blocks`] — one
    /// scratch buffer for the whole job, no per-block allocation.
    fn run_ctr(
        &mut self,
        eligible: &[usize],
        nonce: &[u8; 16],
        data: &mut [u8],
    ) -> Result<(), JobError> {
        let n = data.len().div_ceil(BLOCK);
        let shares = Self::shares_batched(n, eligible.len());
        let mut counters = vec![[0u8; 16]; shares.iter().copied().max().unwrap_or(0)];
        let mut first_block = 0usize;
        for (&w, share) in eligible.iter().zip(shares) {
            if share == 0 {
                continue;
            }
            let batch = &mut counters[..share];
            Ctr::fill_counter_blocks(nonce, first_block as u128, batch);
            self.workers[w].process_batch(batch, Direction::Encrypt)?;
            let end = data.len().min((first_block + share) * BLOCK);
            let span = &mut data[first_block * BLOCK..end];
            for (chunk, keystream) in span.chunks_mut(BLOCK).zip(batch.iter()) {
                for (byte, k) in chunk.iter_mut().zip(keystream) {
                    *byte ^= k;
                }
            }
            first_block += share;
        }
        Ok(())
    }

    /// Chained modes: block `i+1` depends on block `i`, so the whole
    /// stream goes to the single least-loaded eligible core.
    fn run_chained(
        &mut self,
        eligible: &[usize],
        _dir: Direction,
        data: &mut [u8],
        op: impl FnOnce(&BackendCipher<'_>, &mut [u8]),
    ) -> Result<(), JobError> {
        let w = *eligible
            .iter()
            .min_by_key(|&&i| self.workers[i].cycles())
            .expect("eligible is non-empty");
        let adapter = BackendCipher::new(self.workers[w].as_mut());
        op(&adapter, data);
        match adapter.fault() {
            Some(e) => Err(e.into()),
            None => Ok(()),
        }
    }
}

impl fmt::Debug for Engine {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Engine")
            .field("cores", &self.cores())
            .field("queued", &self.queue.len())
            .field("capacity", &self.capacity)
            .finish()
    }
}

/// Adapts one `&mut dyn Backend` to the shared-reference [`BlockCipher`]
/// trait the mode implementations expect. The modes are infallible, so a
/// backend fault is latched here: the first error is recorded, later
/// blocks are skipped, and the caller checks [`BackendCipher::fault`]
/// after the mode pass.
struct BackendCipher<'a> {
    backend: RefCell<&'a mut dyn Backend>,
    fault: Cell<Option<BackendError>>,
}

impl<'a> BackendCipher<'a> {
    fn new(backend: &'a mut dyn Backend) -> Self {
        BackendCipher {
            backend: RefCell::new(backend),
            fault: Cell::new(None),
        }
    }

    fn fault(&self) -> Option<BackendError> {
        self.fault.get()
    }

    fn process(&self, block: &mut [u8], dir: Direction) {
        if self.fault.get().is_some() {
            return;
        }
        let mut buf: [u8; 16] = block.try_into().expect("modes pass whole blocks");
        match self.backend.borrow_mut().process_block(&mut buf, dir) {
            Ok(()) => block.copy_from_slice(&buf),
            Err(e) => self.fault.set(Some(e)),
        }
    }
}

impl BlockCipher for BackendCipher<'_> {
    fn block_len(&self) -> usize {
        BLOCK
    }

    fn encrypt_in_place(&self, block: &mut [u8]) {
        self.process(block, Direction::Encrypt);
    }

    fn decrypt_in_place(&self, block: &mut [u8]) {
        self.process(block, Direction::Decrypt);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aes_ip::core::LATENCY_CYCLES;
    use rijndael::modes::Ecb;
    use rijndael::Aes128;

    const KEY: [u8; 16] = [
        0x2B, 0x7E, 0x15, 0x16, 0x28, 0xAE, 0xD2, 0xA6, 0xAB, 0xF7, 0x15, 0x88, 0x09, 0xCF, 0x4F,
        0x3C,
    ];

    fn sample(len: usize) -> Vec<u8> {
        (0..len).map(|i| (i * 7 + 3) as u8).collect()
    }

    #[test]
    fn shares_split_evenly() {
        assert_eq!(Engine::shares(10, 3), vec![4, 3, 3]);
        assert_eq!(Engine::shares(2, 4), vec![1, 1, 0, 0]);
        assert_eq!(Engine::shares(0, 2), vec![0, 0]);
        assert_eq!(Engine::shares(8, 1), vec![8]);
    }

    #[test]
    fn shares_batched_deals_whole_granules_and_trims_the_tail() {
        // Whole granules spread evenly, exact total preserved.
        assert_eq!(Engine::shares_batched(24, 3), vec![8, 8, 8]);
        assert_eq!(Engine::shares_batched(64, 3), vec![24, 24, 16]);
        // Padding comes back out of the last non-empty share.
        assert_eq!(Engine::shares_batched(7, 3), vec![7, 0, 0]);
        assert_eq!(Engine::shares_batched(11, 4), vec![8, 3, 0, 0]);
        assert_eq!(Engine::shares_batched(65, 2), vec![40, 25]);
        assert_eq!(Engine::shares_batched(0, 2), vec![0, 0]);
        // Every share except the trimmed one is a granule multiple.
        for (n, k) in [(123, 5), (8, 4), (100, 3)] {
            let shares = Engine::shares_batched(n, k);
            assert_eq!(shares.iter().sum::<usize>(), n, "shares_batched({n},{k})");
            let ragged = shares.iter().filter(|s| *s % 8 != 0).count();
            assert!(ragged <= 1, "shares_batched({n},{k}) = {shares:?}");
        }
    }

    #[test]
    fn ecb_sharded_across_cores_matches_reference() {
        let mut engine = Engine::with_farm(&KEY, &[BackendSpec::EncryptCore; 3], 4);
        let data = sample(24 * 16);
        let id = engine.try_submit(Mode::EcbEncrypt, data.clone()).unwrap();
        let out = engine.run();
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].id, id);

        let mut expected = data;
        Ecb::encrypt(&Aes128::new(&KEY), &mut expected).unwrap();
        assert_eq!(out[0].data.as_ref().unwrap(), &expected);

        // All three cores took part: one full 8-block granule each.
        let m = engine.metrics();
        let blocks: Vec<u64> = m.per_core.iter().map(|c| c.blocks).collect();
        assert_eq!(blocks, vec![8, 8, 8]);
    }

    #[test]
    fn ctr_sharded_across_cores_matches_reference_including_partial_tail() {
        let mut engine = Engine::with_farm(&KEY, &[BackendSpec::EncDecCore; 4], 4);
        let nonce = [0xF0u8; 16];
        let data = sample(10 * 16 + 5);
        engine.try_submit(Mode::Ctr(nonce), data.clone()).unwrap();
        let out = engine.run();

        let mut expected = data;
        Ctr::apply(&Aes128::new(&KEY), &nonce, &mut expected);
        assert_eq!(out[0].data.as_ref().unwrap(), &expected);
    }

    #[test]
    fn chained_modes_run_on_one_core_and_match_reference() {
        let reference = Aes128::new(&KEY);
        let iv = [0x11u8; 16];
        for (mode, apply) in [
            (
                Mode::CbcEncrypt(iv),
                Box::new(|d: &mut [u8]| Cbc::encrypt(&reference, &iv, d).unwrap())
                    as Box<dyn Fn(&mut [u8])>,
            ),
            (
                Mode::CbcDecrypt(iv),
                Box::new(|d: &mut [u8]| Cbc::decrypt(&reference, &iv, d).unwrap()),
            ),
            (
                Mode::CfbEncrypt(iv),
                Box::new(|d: &mut [u8]| Cfb::encrypt(&reference, &iv, d)),
            ),
            (
                Mode::CfbDecrypt(iv),
                Box::new(|d: &mut [u8]| Cfb::decrypt(&reference, &iv, d)),
            ),
            (
                Mode::Ofb(iv),
                Box::new(|d: &mut [u8]| Ofb::apply(&reference, &iv, d)),
            ),
        ] {
            let len = if mode.requires_full_blocks() {
                5 * 16
            } else {
                77
            };
            let mut engine = Engine::with_farm(&KEY, &[BackendSpec::EncDecCore; 3], 2);
            let data = sample(len);
            engine.try_submit(mode, data.clone()).unwrap();
            let out = engine.run();

            let mut expected = data;
            apply(&mut expected);
            assert_eq!(out[0].data.as_ref().unwrap(), &expected, "{mode}");

            // Exactly one core did all the work.
            let active = engine
                .metrics()
                .per_core
                .iter()
                .filter(|c| c.blocks > 0)
                .count();
            assert_eq!(active, 1, "{mode} must stay on a single core");
        }
    }

    #[test]
    fn backpressure_rejects_submissions_past_capacity() {
        let mut engine = Engine::with_farm(&KEY, &[BackendSpec::Software], 2);
        engine.try_submit(Mode::EcbEncrypt, sample(16)).unwrap();
        engine.try_submit(Mode::Ctr([0; 16]), sample(5)).unwrap();
        let err = engine
            .try_submit(Mode::Ctr([0; 16]), sample(5))
            .unwrap_err();
        assert_eq!(err, SubmitError::Busy { capacity: 2 });

        // Draining frees the queue.
        assert_eq!(engine.run().len(), 2);
        assert!(engine.try_submit(Mode::Ctr([0; 16]), sample(5)).is_ok());
    }

    #[test]
    fn engine_is_send() {
        fn assert_send<T: Send>() {}
        assert_send::<Engine>();
        assert_send::<JobOutput>();
        assert_send::<SubmitError>();
    }

    #[test]
    fn backpressure_with_mixed_modes_drains_and_resubmits_in_order() {
        // Queue-full / drain / resubmit across a mix of parallel (ECB,
        // CTR) and chained (CBC, OFB) jobs: the submission boundary must
        // not care which scheduler path a queued job will take.
        let mut engine = Engine::with_farm(&KEY, &[BackendSpec::EncDecCore; 2], 3);
        let a = engine.try_submit(Mode::EcbEncrypt, sample(4 * 16)).unwrap();
        let b = engine
            .try_submit(Mode::CbcEncrypt([1; 16]), sample(2 * 16))
            .unwrap();
        let c = engine.try_submit(Mode::Ctr([2; 16]), sample(33)).unwrap();

        // Full: both a parallel and a chained submission bounce.
        assert_eq!(
            engine.try_submit(Mode::Ctr([3; 16]), sample(5)),
            Err(SubmitError::Busy { capacity: 3 })
        );
        assert_eq!(
            engine.try_submit(Mode::Ofb([4; 16]), sample(5)),
            Err(SubmitError::Busy { capacity: 3 })
        );
        // A rejected submission must not burn a job id.
        assert_eq!(engine.queued(), 3);

        // Drain: outputs come back in submission order, all successful.
        let out = engine.run();
        assert_eq!(out.iter().map(|o| o.id).collect::<Vec<_>>(), vec![a, b, c]);
        assert!(out.iter().all(|o| o.data.is_ok()));
        assert_eq!(engine.queued(), 0);

        // Resubmit: ids keep ascending past the drained batch and a full
        // second cycle (mixed modes again) drains in order too.
        let d = engine.try_submit(Mode::Ofb([5; 16]), sample(7)).unwrap();
        let e = engine.try_submit(Mode::EcbDecrypt, sample(16)).unwrap();
        assert!(c < d && d < e);
        let out = engine.run();
        assert_eq!(out.iter().map(|o| o.id).collect::<Vec<_>>(), vec![d, e]);
        assert!(out.iter().all(|o| o.data.is_ok()));
    }

    #[test]
    fn ragged_ecb_is_rejected_at_submission() {
        let mut engine = Engine::with_farm(&KEY, &[BackendSpec::Software], 2);
        let err = engine.try_submit(Mode::EcbEncrypt, sample(17)).unwrap_err();
        assert_eq!(err, SubmitError::RaggedLength { len: 17 });
        assert_eq!(engine.queued(), 0, "rejected jobs hold no queue slot");
        // CTR streams, so ragged lengths are fine.
        assert!(engine.try_submit(Mode::Ctr([0; 16]), sample(17)).is_ok());
    }

    #[test]
    fn decrypt_job_on_encrypt_only_farm_reports_instead_of_panicking() {
        let mut engine = Engine::with_farm(&KEY, &[BackendSpec::EncryptCore; 2], 2);
        engine.try_submit(Mode::EcbDecrypt, sample(32)).unwrap();
        let out = engine.run();
        assert_eq!(
            out[0].data,
            Err(JobError::NoCapableCore {
                dir: Direction::Decrypt
            })
        );
        // But CTR decryption runs fine on the forward datapath.
        engine.try_submit(Mode::Ctr([3; 16]), sample(32)).unwrap();
        assert!(engine.run()[0].data.is_ok());
    }

    #[test]
    fn mixed_farm_routes_around_incapable_cores() {
        // Decrypt-only core must be skipped for encrypt work and vice
        // versa; output must still match the reference.
        let specs = [
            BackendSpec::EncryptCore,
            BackendSpec::DecryptCore,
            BackendSpec::Software,
        ];
        let mut engine = Engine::with_farm(&KEY, &specs, 4);
        let data = sample(6 * 16);
        engine.try_submit(Mode::EcbEncrypt, data.clone()).unwrap();
        engine.try_submit(Mode::EcbDecrypt, data.clone()).unwrap();
        let out = engine.run();

        let reference = Aes128::new(&KEY);
        let mut enc = data.clone();
        Ecb::encrypt(&reference, &mut enc).unwrap();
        let mut dec = data;
        Ecb::decrypt(&reference, &mut dec).unwrap();
        assert_eq!(out[0].data.as_ref().unwrap(), &enc);
        assert_eq!(out[1].data.as_ref().unwrap(), &dec);

        let m = engine.metrics();
        // The encrypt job shards over {ip-encrypt, soft-ref}, the decrypt
        // job over {ip-decrypt, soft-ref}. Six blocks fit inside a single
        // 8-block granule, so the granule planner hands the whole job to
        // the first eligible core and the software core stays idle.
        let by_name: Vec<(&str, u64)> = m.per_core.iter().map(|c| (c.name, c.blocks)).collect();
        assert_eq!(
            by_name,
            vec![("ip-encrypt", 6), ("ip-decrypt", 6), ("soft-ref", 0)]
        );
    }

    #[test]
    fn ctr_wall_cycles_shrink_as_cores_are_added() {
        let blocks = 64usize;
        let mut last = u64::MAX;
        for cores in 1..=4 {
            let mut engine = Engine::with_farm(&KEY, &vec![BackendSpec::EncryptCore; cores], 2);
            engine
                .try_submit(Mode::Ctr([9; 16]), sample(blocks * 16))
                .unwrap();
            engine.run();
            let m = engine.metrics();
            assert_eq!(m.total_blocks, blocks as u64);
            // Each core's share costs 1 load edge + 50/block; shares are
            // dealt in 8-block granules (64 blocks = 8 granules).
            let biggest_share = (blocks.div_ceil(8).div_ceil(cores) * 8) as u64;
            assert_eq!(m.wall_cycles, 1 + biggest_share * LATENCY_CYCLES);
            assert!(
                m.wall_cycles < last,
                "{cores} cores must beat {}",
                cores - 1
            );
            assert!(
                m.min_occupancy_pct() >= 90.0,
                "cores must stay saturated, got {:.1}%",
                m.min_occupancy_pct()
            );
            last = m.wall_cycles;
        }
    }

    #[test]
    fn least_loaded_core_wins_chained_work() {
        let mut engine = Engine::with_farm(&KEY, &[BackendSpec::EncDecCore; 2], 4);
        // Load core 0 with a chained job, then submit another: it must
        // land on core 1 (cheaper virtual clock).
        engine
            .try_submit(Mode::CbcEncrypt([0; 16]), sample(4 * 16))
            .unwrap();
        engine
            .try_submit(Mode::CbcEncrypt([0; 16]), sample(4 * 16))
            .unwrap();
        engine.run();
        let m = engine.metrics();
        assert_eq!(m.per_core[0].blocks, 4);
        assert_eq!(m.per_core[1].blocks, 4);
    }

    #[test]
    fn empty_buffer_jobs_complete_without_work() {
        let mut engine = Engine::with_farm(&KEY, &[BackendSpec::EncDecCore], 4);
        for mode in [
            Mode::EcbEncrypt,
            Mode::Ctr([0; 16]),
            Mode::CbcEncrypt([0; 16]),
        ] {
            engine.try_submit(mode, Vec::new()).unwrap();
        }
        for out in engine.run() {
            assert_eq!(out.data.unwrap(), Vec::<u8>::new());
        }
        assert_eq!(engine.metrics().total_blocks, 0);
    }

    #[test]
    fn job_ids_are_unique_and_ordered() {
        let mut engine = Engine::with_farm(&KEY, &[BackendSpec::Software], 8);
        let a = engine.try_submit(Mode::Ctr([0; 16]), sample(1)).unwrap();
        let b = engine.try_submit(Mode::Ctr([0; 16]), sample(1)).unwrap();
        assert!(a < b);
        let out = engine.run();
        assert_eq!(out[0].id, a);
        assert_eq!(out[1].id, b);
        assert_eq!(a.to_string(), "job#0");
    }

    #[test]
    fn submit_errors_format() {
        assert!(SubmitError::Busy { capacity: 2 }
            .to_string()
            .contains("full"));
        assert!(SubmitError::RaggedLength { len: 17 }
            .to_string()
            .contains("17"));
        let e = JobError::NoCapableCore {
            dir: Direction::Decrypt,
        };
        assert_eq!(e.to_string(), "no core in the farm can decrypt");
    }
}

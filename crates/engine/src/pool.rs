//! True thread-parallel execution: a work-stealing, elastic worker pool.
//!
//! The [`Engine`](crate::Engine) models the paper's farm in *virtual
//! time* — cycle counters advance, but every job still executes inline on
//! the caller's thread. [`WorkerPool`] is the wall-clock counterpart: each
//! [`Backend`] core gets an owning OS worker thread with a local deque,
//! submission goes through a shared `&self` handle with the same bounded
//! [`SubmitError::Busy`] semantics, and finished jobs come back over a
//! completion channel (plus an optional notifier callback, which the TCP
//! service wires to a self-pipe so its `poll(2)` loops wake without
//! spinning).
//!
//! Scheduling mirrors the virtual-time engine: parallel modes (ECB, CTR)
//! are dealt across every eligible worker's deque in the same 8-block
//! granule plan ([`Engine::shares_batched`]), while chained modes (CBC,
//! CFB, OFB) are *pinned* to the least-loaded capable worker — block
//! `i+1` depends on block `i`, so the stream must not migrate mid-job. An
//! idle worker first drains its own deque, then the shared injector, then
//! **steals** from the back of the longest sibling deque (never a pinned
//! task, never a direction its datapath lacks).
//!
//! The farm is *elastic* — the software analog of partial FPGA
//! reconfiguration: [`WorkerPool::add_core`] and
//! [`WorkerPool::remove_core`] grow and shrink the worker set while jobs
//! are in flight, and [`WorkerPool::swap_core`] hot-swaps one worker's
//! backend between tasks without draining the farm. A retired slot's
//! pinned streams re-pin to a surviving capable worker; its parallel
//! shards fall back to the injector, and injector work the narrowed
//! farm can no longer serve fails typed instead of stranding.
//! [`WorkerPool::autoscale_tick`] drives resizing from the pool's own
//! open-job count and the published `engine.core.occupancy_bp`
//! histogram under a [`ResizePolicy`], and every decision is visible as
//! `engine.resize.*` counters and the `engine.workers` gauge.
//!
//! Worker threads spawn lazily on the first submission, so a pool that
//! never sees work (an idle service session holding only a key) costs no
//! threads.
//!
//! # Examples
//!
//! ```
//! use engine::{Mode, PoolBuilder, BackendSpec};
//!
//! let pool = PoolBuilder::new()
//!     .cores(&[BackendSpec::Software; 2])
//!     .capacity(8)
//!     .build(&[0x2B; 16]);
//! let id = pool.try_submit(Mode::EcbEncrypt, vec![0u8; 64]).unwrap();
//! let out = pool.collect_timeout(std::time::Duration::from_secs(5)).unwrap();
//! assert_eq!(out.id, id);
//! assert!(out.data.is_ok());
//! ```

use std::collections::VecDeque;
use std::fmt;
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use aes_ip::core::Direction;
use telemetry::{Counter, Gauge, Histogram, Registry};

use crate::backend::{Backend, BackendSpec};
use crate::scheduler::{
    run_ctr_span, run_ecb_span, run_on_one, Engine, JobError, JobId, JobOutput, Mode, SubmitError,
    OCCUPANCY_BOUNDS,
};

/// AES block size in bytes.
const BLOCK: usize = 16;

/// Bucket bounds for the `engine.pool.job_us` histogram: wall-clock
/// submit-to-complete latency in microseconds, geometric steps from 50 µs
/// to a quarter second.
const JOB_US_BOUNDS: [u64; 12] = [
    50, 100, 250, 500, 1_000, 2_500, 5_000, 10_000, 25_000, 50_000, 100_000, 250_000,
];

/// What [`WorkerPool::autoscale_tick`] decided this tick.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ResizeAction {
    /// A worker was added at this slot index.
    Grew(usize),
    /// The worker at this slot index was retired.
    Shrank(usize),
}

/// Telemetry-driven resize policy for [`WorkerPool::autoscale_tick`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ResizePolicy {
    /// Never shrink below this many live workers.
    pub min_workers: usize,
    /// Never grow past this many live workers.
    pub max_workers: usize,
    /// Grow when this pool has at least this many of its *own* jobs
    /// open (accepted, not yet delivered). The shared
    /// `engine.queue.depth` gauge is deliberately not consulted: every
    /// keyed session publishes into the same service registry, so a
    /// neighbor's backlog would over-grow unrelated pools.
    pub grow_depth: usize,
    /// Shrink only after this many *consecutive* idle ticks, so a burst
    /// gap does not flap the farm.
    pub shrink_after_ticks: u32,
    /// Treat the farm as saturated (and refuse to shrink) while the mean
    /// `engine.core.occupancy_bp` sample since the last tick is at or
    /// above this many basis points.
    pub busy_occupancy_bp: u64,
    /// The backend grown workers are built with.
    pub spec: BackendSpec,
}

impl Default for ResizePolicy {
    fn default() -> Self {
        ResizePolicy {
            min_workers: 1,
            max_workers: 4,
            grow_depth: 4,
            shrink_after_ticks: 8,
            busy_occupancy_bp: 8_000,
            spec: BackendSpec::Auto,
        }
    }
}

/// One unit of schedulable work: a shard (or the whole) of a job.
struct Task {
    job: Arc<JobState>,
    /// Index into the job's `parts` this task produces.
    part: usize,
    /// Pinned tasks (chained streams) never migrate by stealing.
    pinned: bool,
    work: Work,
}

enum Work {
    /// A contiguous whole-blocks span of an ECB job.
    EcbShard { dir: Direction, data: Vec<u8> },
    /// A contiguous counter span of a CTR job (`first_block` is the
    /// span's SP 800-38A counter offset).
    CtrShard {
        nonce: [u8; 16],
        first_block: u128,
        data: Vec<u8>,
    },
    /// An unsharded job of any mode.
    Whole { mode: Mode, data: Vec<u8> },
}

impl Task {
    fn dir(&self) -> Direction {
        match &self.work {
            Work::EcbShard { dir, .. } => *dir,
            Work::CtrShard { .. } => Direction::Encrypt,
            Work::Whole { mode, .. } => mode.direction(),
        }
    }
}

/// Shared completion state of one job across its shards.
struct JobState {
    id: JobId,
    started: Instant,
    /// One slot per shard, reassembled in order at completion.
    parts: Mutex<Vec<Option<Vec<u8>>>>,
    /// Shards still outstanding; the worker that takes this to zero
    /// assembles and delivers the output.
    remaining: Mutex<usize>,
    /// First fault wins; the job reports it once every shard has landed.
    failed: Mutex<Option<JobError>>,
}

/// One farm slot's scheduler-visible state. The worker thread owns the
/// backend itself; the slot mirrors just what routing decisions need.
struct Slot {
    alive: bool,
    name: &'static str,
    enc: bool,
    dec: bool,
    queue: VecDeque<Task>,
    /// A pre-built replacement backend the worker installs before its
    /// next task (hot-swap without draining the farm).
    swap: Option<Box<dyn Backend>>,
    busy: bool,
}

impl Slot {
    fn supports(&self, dir: Direction) -> bool {
        match dir {
            Direction::Encrypt => self.enc,
            Direction::Decrypt => self.dec,
        }
    }

    fn load(&self) -> usize {
        self.queue.len() + usize::from(self.busy)
    }
}

struct State {
    slots: Vec<Slot>,
    injector: VecDeque<Task>,
    /// Specs waiting for the lazy first-submission spawn.
    pending: Vec<BackendSpec>,
    /// Jobs accepted and not yet delivered — the bounded-capacity count.
    open: usize,
    started: bool,
    shutdown: bool,
}

impl State {
    fn eligible(&self, dir: Direction) -> Vec<usize> {
        (0..self.slots.len())
            .filter(|&i| self.slots[i].alive && self.slots[i].supports(dir))
            .collect()
    }

    fn least_loaded(&self, dir: Direction) -> Option<usize> {
        self.eligible(dir)
            .into_iter()
            .min_by_key(|&i| self.slots[i].load())
    }

    /// Removes and returns every injector task whose direction no live
    /// worker supports. Resizes that change the farm's capability set
    /// must call this: a lone parallel job lands in the injector, and a
    /// worker only ever takes injector work it can run — an unservable
    /// task would otherwise sit there forever, leaking its capacity
    /// slot and hanging `wait_idle`.
    fn drain_unservable_injector(&mut self) -> Vec<Task> {
        let can_enc = self.slots.iter().any(|s| s.alive && s.enc);
        let can_dec = self.slots.iter().any(|s| s.alive && s.dec);
        let mut stranded = Vec::new();
        let mut kept = VecDeque::with_capacity(self.injector.len());
        for t in self.injector.drain(..) {
            let ok = match t.dir() {
                Direction::Encrypt => can_enc,
                Direction::Decrypt => can_dec,
            };
            if ok {
                kept.push_back(t);
            } else {
                stranded.push(t);
            }
        }
        self.injector = kept;
        stranded
    }
}

struct Inner {
    state: Mutex<State>,
    /// Wakes workers when tasks arrive, a swap lands, or shutdown starts.
    work_cv: Condvar,
    /// Wakes [`WorkerPool::wait_idle`] when `open` returns to zero.
    idle_cv: Condvar,
    registry: Registry,
    capacity: usize,
    /// Key bytes for building grown / swapped backends; wiped on drop.
    key: Mutex<Vec<u8>>,
    tx: Mutex<Sender<JobOutput>>,
    notifier: Mutex<Option<Arc<dyn Fn() + Send + Sync>>>,
    jobs_completed: Counter,
    jobs_failed: Counter,
    queue_depth: Gauge,
    job_us: Histogram,
}

impl Inner {
    /// Final delivery: publish counters, push the output down the
    /// channel, fire the notifier, and only then release the capacity
    /// slot — locks are never held across the callback.
    fn deliver(&self, out: JobOutput, started: Instant) {
        self.queue_depth.sub(1);
        match &out.data {
            Ok(_) => self.jobs_completed.incr(),
            Err(_) => self.jobs_failed.incr(),
        }
        let us = started.elapsed().as_micros().min(u128::from(u64::MAX)) as u64;
        self.job_us.record(us);
        let _ = self.tx.lock().expect("sender poisoned").send(out);
        let notify = self.notifier.lock().expect("notifier poisoned").clone();
        if let Some(f) = notify {
            f();
        }
        // The capacity slot is released only after the output is on the
        // channel and the notifier has fired, so `wait_idle` returning
        // means every delivery side effect is visible.
        let mut st = self.state.lock().expect("pool state poisoned");
        st.open -= 1;
        if st.open == 0 {
            self.idle_cv.notify_all();
        }
    }

    /// Records one shard's result; the last shard in assembles the job
    /// and delivers it. Call *without* holding the state lock.
    fn finish_part(&self, job: &Arc<JobState>, part: usize, result: Result<Vec<u8>, JobError>) {
        match result {
            Ok(bytes) => {
                self.parts_slot(job, part, bytes);
            }
            Err(e) => {
                let mut failed = job.failed.lock().expect("job fault slot poisoned");
                if failed.is_none() {
                    *failed = Some(e);
                }
            }
        }
        let last = {
            let mut remaining = job.remaining.lock().expect("job remaining poisoned");
            *remaining -= 1;
            *remaining == 0
        };
        if !last {
            return;
        }
        let fault = job.failed.lock().expect("job fault slot poisoned").take();
        let data = match fault {
            Some(e) => Err(e),
            None => {
                let mut parts = job.parts.lock().expect("job parts poisoned");
                let total: usize = parts.iter().map(|p| p.as_ref().map_or(0, Vec::len)).sum();
                let mut buf = Vec::with_capacity(total);
                for p in parts.iter_mut() {
                    buf.extend_from_slice(&p.take().expect("every shard landed"));
                }
                Ok(buf)
            }
        };
        self.deliver(JobOutput { id: job.id, data }, job.started);
    }

    fn parts_slot(&self, job: &Arc<JobState>, part: usize, bytes: Vec<u8>) {
        job.parts.lock().expect("job parts poisoned")[part] = Some(bytes);
    }

    /// Fails every task in `tasks` (used when a remove/swap leaves a
    /// direction with no capable worker). Call without the state lock.
    fn fail_tasks(&self, tasks: Vec<Task>) {
        for t in tasks {
            let dir = t.dir();
            self.finish_part(&t.job, t.part, Err(JobError::NoCapableCore { dir }));
        }
    }
}

/// Builds a [`WorkerPool`] — farm composition, queue capacity, telemetry
/// registry — mirroring [`EngineBuilder`](crate::EngineBuilder).
#[derive(Default)]
pub struct PoolBuilder {
    specs: Vec<BackendSpec>,
    capacity: Option<usize>,
    registry: Option<Registry>,
}

impl PoolBuilder {
    /// Starts an empty builder (no cores, default capacity 8, private
    /// registry).
    #[must_use]
    pub fn new() -> Self {
        PoolBuilder::default()
    }

    /// Adds one worker slot built from `spec` (keyed at first
    /// submission, when the worker threads spawn).
    #[must_use]
    pub fn core(mut self, spec: BackendSpec) -> Self {
        self.specs.push(spec);
        self
    }

    /// Adds one worker slot per spec, in order.
    #[must_use]
    pub fn cores(mut self, specs: &[BackendSpec]) -> Self {
        self.specs.extend_from_slice(specs);
        self
    }

    /// Sets the bounded open-job capacity (default 8).
    #[must_use]
    pub fn capacity(mut self, capacity: usize) -> Self {
        self.capacity = Some(capacity);
        self
    }

    /// Publishes the pool's instruments into `registry` instead of a
    /// fresh private one (the same sharing semantics as engine farms:
    /// delta-pushed counters aggregate).
    #[must_use]
    pub fn registry(mut self, registry: Registry) -> Self {
        self.registry = Some(registry);
        self
    }

    /// Assembles the pool. The key is retained (and wiped on drop) so
    /// grown and hot-swapped workers can be keyed at runtime; worker
    /// threads spawn lazily on the first submission.
    ///
    /// # Panics
    ///
    /// Panics on an empty farm or a zero-capacity queue, like
    /// [`EngineBuilder::build`](crate::EngineBuilder::build).
    #[must_use]
    pub fn build(self, key: &[u8]) -> WorkerPool {
        assert!(!self.specs.is_empty(), "a pool needs at least one backend");
        let capacity = self.capacity.unwrap_or(8);
        assert!(capacity > 0, "a zero-capacity queue rejects every job");
        let registry = self.registry.unwrap_or_default();
        registry.gauge("engine.queue.capacity").set(capacity as i64);
        let workers_gauge = registry.gauge("engine.workers");
        workers_gauge.add(self.specs.len() as i64);
        let (tx, rx) = channel();
        WorkerPool {
            inner: Arc::new(Inner {
                state: Mutex::new(State {
                    slots: Vec::new(),
                    injector: VecDeque::new(),
                    pending: self.specs,
                    open: 0,
                    started: false,
                    shutdown: false,
                }),
                work_cv: Condvar::new(),
                idle_cv: Condvar::new(),
                capacity,
                key: Mutex::new(key.to_vec()),
                tx: Mutex::new(tx),
                notifier: Mutex::new(None),
                jobs_completed: registry.counter("engine.jobs.completed"),
                jobs_failed: registry.counter("engine.jobs.failed"),
                queue_depth: registry.gauge("engine.queue.depth"),
                job_us: registry.histogram("engine.pool.job_us", &JOB_US_BOUNDS),
                registry: registry.clone(),
            }),
            rx: Mutex::new(rx),
            handles: Mutex::new(Vec::new()),
            next_id: AtomicU64::new(0),
            submit_accepted: registry.counter("engine.submit.accepted"),
            submit_busy: registry.counter("engine.submit.busy"),
            submit_ragged: registry.counter("engine.submit.ragged"),
            steals: registry.counter("engine.pool.steals"),
            resize_grow: registry.counter("engine.resize.grow"),
            resize_shrink: registry.counter("engine.resize.shrink"),
            resize_swap: registry.counter("engine.resize.swap"),
            workers_gauge,
            occupancy_bp: registry.histogram("engine.core.occupancy_bp", &OCCUPANCY_BOUNDS),
            idle_streak: AtomicU32::new(0),
            last_occupancy: Mutex::new((0, 0)),
            registry,
        }
    }
}

impl fmt::Debug for PoolBuilder {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("PoolBuilder")
            .field("specs", &self.specs)
            .field("capacity", &self.capacity)
            .field("shared_registry", &self.registry.is_some())
            .finish()
    }
}

/// The work-stealing elastic thread pool. See the [module docs](self).
pub struct WorkerPool {
    inner: Arc<Inner>,
    rx: Mutex<Receiver<JobOutput>>,
    handles: Mutex<Vec<JoinHandle<()>>>,
    next_id: AtomicU64,
    submit_accepted: Counter,
    submit_busy: Counter,
    submit_ragged: Counter,
    steals: Counter,
    resize_grow: Counter,
    resize_shrink: Counter,
    resize_swap: Counter,
    workers_gauge: Gauge,
    occupancy_bp: Histogram,
    idle_streak: AtomicU32,
    /// `(count, sum)` of the occupancy histogram at the last autoscale
    /// tick, for the per-tick mean.
    last_occupancy: Mutex<(u64, u64)>,
    registry: Registry,
}

impl WorkerPool {
    /// Shorthand: a pool over `specs` with a private registry.
    #[must_use]
    pub fn with_farm(key: &[u8], specs: &[BackendSpec], capacity: usize) -> WorkerPool {
        PoolBuilder::new()
            .cores(specs)
            .capacity(capacity)
            .build(key)
    }

    /// The registry this pool publishes into.
    #[must_use]
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// The bounded open-job capacity (the `Busy` detail value).
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.inner.capacity
    }

    /// Jobs accepted and not yet delivered.
    #[must_use]
    pub fn open_jobs(&self) -> usize {
        self.inner.state.lock().expect("pool state poisoned").open
    }

    /// Live workers (configured-but-unspawned count before the lazy
    /// start, alive slots after).
    #[must_use]
    pub fn workers(&self) -> usize {
        let st = self.inner.state.lock().expect("pool state poisoned");
        if st.started {
            st.slots.iter().filter(|s| s.alive).count()
        } else {
            st.pending.len()
        }
    }

    /// Installs (or replaces) the completion notifier: called once per
    /// delivered job, after the output is in the channel. The service
    /// points this at a shard's wake pipe so `poll(2)` loops re-arm
    /// without polling the pool.
    pub fn set_notifier(&self, notifier: Arc<dyn Fn() + Send + Sync>) {
        *self.inner.notifier.lock().expect("notifier poisoned") = Some(notifier);
    }

    /// Enqueues a mode operation over `data`, applying backpressure, and
    /// wakes a worker. The first accepted submission spawns the worker
    /// threads.
    ///
    /// Parallel modes (ECB, CTR) are dealt across every eligible worker
    /// in 8-block granules; chained modes pin to the least-loaded capable
    /// worker. The completion surfaces from [`WorkerPool::try_collect`] /
    /// [`WorkerPool::collect_timeout`] in completion order.
    ///
    /// # Errors
    ///
    /// * [`SubmitError::Busy`] when `capacity` jobs are already open (or
    ///   the pool is shutting down);
    /// * [`SubmitError::RaggedLength`] when an ECB/CBC job is not a whole
    ///   number of blocks.
    pub fn try_submit(&self, mode: Mode, data: Vec<u8>) -> Result<JobId, SubmitError> {
        let mut st = self.inner.state.lock().expect("pool state poisoned");
        if st.shutdown || st.open >= self.inner.capacity {
            self.submit_busy.incr();
            return Err(SubmitError::Busy {
                capacity: self.inner.capacity,
            });
        }
        if mode.requires_full_blocks() && !data.len().is_multiple_of(BLOCK) {
            self.submit_ragged.incr();
            return Err(SubmitError::RaggedLength { len: data.len() });
        }
        self.ensure_started(&mut st);
        self.submit_accepted.incr();
        let id = JobId::from_raw(self.next_id.fetch_add(1, Ordering::Relaxed));

        let dir = mode.direction();
        let eligible = st.eligible(dir);
        if eligible.is_empty() || data.is_empty() {
            // Degenerate jobs complete on the submitting thread:
            // accepted-then-failed when the farm has no datapath for the
            // direction (like the engine), trivially done when there are
            // no bytes. Take the capacity slot first — deliver() releases
            // it.
            st.open += 1;
            drop(st);
            self.inner.queue_depth.add(1);
            let data = if eligible.is_empty() {
                Err(JobError::NoCapableCore { dir })
            } else {
                Ok(Vec::new())
            };
            self.inner.deliver(JobOutput { id, data }, Instant::now());
            return Ok(id);
        }

        st.open += 1;
        self.inner.queue_depth.add(1);
        if mode.is_parallel() && eligible.len() > 1 {
            self.deal_shards(&mut st, id, mode, data, &eligible);
        } else {
            let job = Arc::new(JobState {
                id,
                started: Instant::now(),
                parts: Mutex::new(vec![None]),
                remaining: Mutex::new(1),
                failed: Mutex::new(None),
            });
            let task = Task {
                job,
                part: 0,
                pinned: !mode.is_parallel(),
                work: Work::Whole { mode, data },
            };
            if task.pinned {
                let target = st.least_loaded(dir).expect("eligible is non-empty");
                st.slots[target].queue.push_back(task);
            } else {
                // A lone parallel job: any capable worker may take it.
                st.injector.push_back(task);
            }
        }
        drop(st);
        self.inner.work_cv.notify_all();
        Ok(id)
    }

    /// Deals a parallel job's granule shards across the eligible
    /// workers' deques (same plan as the virtual-time engine). Idle
    /// workers rebalance by stealing from the back.
    fn deal_shards(
        &self,
        st: &mut State,
        id: JobId,
        mode: Mode,
        mut data: Vec<u8>,
        eligible: &[usize],
    ) {
        let n = data.len().div_ceil(BLOCK);
        let shares = Engine::shares_batched(n, eligible.len());
        // Split from the tail so each shard is one allocation and the
        // bytes are copied exactly once.
        let mut chunks: Vec<(usize, u128, Vec<u8>)> = Vec::new();
        let mut first = n;
        for (i, &share) in shares.iter().enumerate().rev() {
            if share == 0 {
                continue;
            }
            first -= share;
            let chunk = data.split_off((first * BLOCK).min(data.len()));
            chunks.push((i, first as u128, chunk));
        }
        chunks.reverse();
        let job = Arc::new(JobState {
            id,
            started: Instant::now(),
            parts: Mutex::new(vec![None; chunks.len()]),
            remaining: Mutex::new(chunks.len()),
            failed: Mutex::new(None),
        });
        for (part, (slot_pos, first_block, bytes)) in chunks.into_iter().enumerate() {
            let work = match mode {
                Mode::EcbEncrypt | Mode::EcbDecrypt => Work::EcbShard {
                    dir: mode.direction(),
                    data: bytes,
                },
                Mode::Ctr(nonce) => Work::CtrShard {
                    nonce,
                    first_block,
                    data: bytes,
                },
                _ => unreachable!("only parallel modes are sharded"),
            };
            st.slots[eligible[slot_pos]].queue.push_back(Task {
                job: Arc::clone(&job),
                part,
                pinned: false,
                work,
            });
        }
    }

    /// Spawns the configured workers on the first submission.
    fn ensure_started(&self, st: &mut State) {
        if st.started {
            return;
        }
        st.started = true;
        let pending = std::mem::take(&mut st.pending);
        let key = self.inner.key.lock().expect("pool key poisoned").clone();
        for spec in pending {
            self.spawn_worker(st, spec.build(&key));
        }
    }

    /// Registers a slot for `backend` and spawns its owning thread.
    /// Returns the new slot index.
    fn spawn_worker(&self, st: &mut State, backend: Box<dyn Backend>) -> usize {
        let index = st.slots.len();
        st.slots.push(Slot {
            alive: true,
            name: backend.name(),
            enc: backend.supports(Direction::Encrypt),
            dec: backend.supports(Direction::Decrypt),
            queue: VecDeque::new(),
            swap: None,
            busy: false,
        });
        let inner = Arc::clone(&self.inner);
        let steals = self.steals.clone();
        let occupancy = self.occupancy_bp.clone();
        let handle = std::thread::Builder::new()
            .name(format!("engine-worker-{index}"))
            .spawn(move || worker_main(inner, index, backend, steals, occupancy))
            .expect("spawn engine worker thread");
        self.handles
            .lock()
            .expect("pool handles poisoned")
            .push(handle);
        index
    }

    /// Adds one worker built from `spec` (with the pool's key) to the
    /// live farm, returning its slot index. Counted as
    /// `engine.resize.grow`.
    pub fn add_core(&self, spec: BackendSpec) -> usize {
        let mut st = self.inner.state.lock().expect("pool state poisoned");
        let index = if st.started {
            let key = self.inner.key.lock().expect("pool key poisoned").clone();
            self.spawn_worker(&mut st, spec.build(&key))
        } else {
            st.pending.push(spec);
            st.pending.len() - 1
        };
        drop(st);
        self.workers_gauge.add(1);
        self.resize_grow.incr();
        self.inner.work_cv.notify_all();
        index
    }

    /// Retires the worker at `index`: its pinned streams re-pin to a
    /// surviving capable worker, its parallel shards fall back to the
    /// injector, and tasks no surviving worker can serve fail with
    /// [`JobError::NoCapableCore`]. Counted as `engine.resize.shrink`.
    /// Returns `false` for an unknown or already-retired slot.
    pub fn remove_core(&self, index: usize) -> bool {
        let mut st = self.inner.state.lock().expect("pool state poisoned");
        if !st.started {
            if index < st.pending.len() {
                st.pending.remove(index);
                drop(st);
                self.workers_gauge.sub(1);
                self.resize_shrink.incr();
                return true;
            }
            return false;
        }
        if index >= st.slots.len() || !st.slots[index].alive {
            return false;
        }
        st.slots[index].alive = false;
        let orphans: Vec<Task> = st.slots[index].queue.drain(..).collect();
        let mut unroutable = reroute(&mut st, orphans);
        unroutable.extend(st.drain_unservable_injector());
        drop(st);
        self.inner.fail_tasks(unroutable);
        self.workers_gauge.sub(1);
        self.resize_shrink.incr();
        self.inner.work_cv.notify_all();
        true
    }

    /// Hot-swaps the backend of the worker at `index` to one freshly
    /// built from `spec` with the pool's key, *without* draining the
    /// farm: the worker installs the replacement before its next task;
    /// the task it is executing right now finishes on the old backend.
    /// Queued tasks the new backend cannot serve are re-routed first.
    /// Counted as `engine.resize.swap`. Returns `false` for an unknown
    /// or retired slot.
    pub fn swap_core(&self, index: usize, spec: BackendSpec) -> bool {
        let key = self.inner.key.lock().expect("pool key poisoned").clone();
        let mut st = self.inner.state.lock().expect("pool state poisoned");
        if !st.started {
            if index < st.pending.len() {
                st.pending[index] = spec;
                drop(st);
                self.resize_swap.incr();
                return true;
            }
            return false;
        }
        if index >= st.slots.len() || !st.slots[index].alive {
            return false;
        }
        let backend = spec.build(&key);
        let (enc, dec) = (
            backend.supports(Direction::Encrypt),
            backend.supports(Direction::Decrypt),
        );
        st.slots[index].name = backend.name();
        st.slots[index].enc = enc;
        st.slots[index].dec = dec;
        st.slots[index].swap = Some(backend);
        // The slot's queue may hold directions the new backend lacks
        // (e.g. encdec -> encrypt-only): migrate them before the worker
        // blindly pops its own deque.
        let stale: Vec<Task> = {
            let queue = &mut st.slots[index].queue;
            let mut kept = VecDeque::with_capacity(queue.len());
            let mut moved = Vec::new();
            for t in queue.drain(..) {
                let ok = match t.dir() {
                    Direction::Encrypt => enc,
                    Direction::Decrypt => dec,
                };
                if ok {
                    kept.push_back(t);
                } else {
                    moved.push(t);
                }
            }
            *queue = kept;
            moved
        };
        let mut unroutable = reroute(&mut st, stale);
        unroutable.extend(st.drain_unservable_injector());
        drop(st);
        self.inner.fail_tasks(unroutable);
        self.resize_swap.incr();
        self.inner.work_cv.notify_all();
        true
    }

    /// One supervisor tick of the elastic control plane: reads this
    /// pool's own open-job count (the per-pool analog of the
    /// `engine.queue.depth` gauge, which is registry-wide and would let
    /// a neighbor session's backlog grow this farm) and the
    /// `engine.core.occupancy_bp` histogram, and grows or shrinks the
    /// farm under `policy`. Growth requires this pool's own queue
    /// pressure; shrinking requires
    /// [`ResizePolicy::shrink_after_ticks`] consecutive idle ticks with
    /// the cores below the saturation bar.
    pub fn autoscale_tick(&self, policy: &ResizePolicy) -> Option<ResizeAction> {
        let (count, sum) = (self.occupancy_bp.count(), self.occupancy_bp.sum());
        let (dcount, dsum) = {
            let mut last = self.last_occupancy.lock().expect("occupancy watermark");
            let d = (count - last.0, sum - last.1);
            *last = (count, sum);
            d
        };
        let saturated = dcount > 0 && dsum / dcount >= policy.busy_occupancy_bp;
        let (own_open, workers) = {
            let st = self.inner.state.lock().expect("pool state poisoned");
            let live = if st.started {
                st.slots.iter().filter(|s| s.alive).count()
            } else {
                st.pending.len()
            };
            (st.open, live)
        };
        if own_open >= policy.grow_depth && workers < policy.max_workers {
            self.idle_streak.store(0, Ordering::Relaxed);
            return Some(ResizeAction::Grew(self.add_core(policy.spec)));
        }
        if own_open == 0 && !saturated && workers > policy.min_workers {
            let streak = self.idle_streak.fetch_add(1, Ordering::Relaxed) + 1;
            if streak >= policy.shrink_after_ticks {
                self.idle_streak.store(0, Ordering::Relaxed);
                let victim = {
                    let st = self.inner.state.lock().expect("pool state poisoned");
                    (0..st.slots.len()).rev().find(|&i| st.slots[i].alive)
                };
                if let Some(i) = victim {
                    if self.remove_core(i) {
                        return Some(ResizeAction::Shrank(i));
                    }
                }
            }
        } else {
            self.idle_streak.store(0, Ordering::Relaxed);
        }
        None
    }

    /// A finished job, if one is ready — non-blocking, completion order.
    #[must_use]
    pub fn try_collect(&self) -> Option<JobOutput> {
        self.rx
            .lock()
            .expect("pool receiver poisoned")
            .try_recv()
            .ok()
    }

    /// A finished job, waiting up to `timeout` for one to complete.
    #[must_use]
    pub fn collect_timeout(&self, timeout: Duration) -> Option<JobOutput> {
        self.rx
            .lock()
            .expect("pool receiver poisoned")
            .recv_timeout(timeout)
            .ok()
    }

    /// Blocks until no jobs are open (all accepted work delivered).
    pub fn wait_idle(&self) {
        let mut st = self.inner.state.lock().expect("pool state poisoned");
        while st.open > 0 {
            st = self.inner.idle_cv.wait(st).expect("pool state poisoned");
        }
    }

    /// Like [`WorkerPool::wait_idle`], but gives up after `timeout`.
    /// Returns `true` when the pool went idle (every accepted job
    /// delivered), `false` on timeout — the graceful-shutdown bound for
    /// callers that must not hang on a wedged backend.
    #[must_use]
    pub fn wait_idle_timeout(&self, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        let mut st = self.inner.state.lock().expect("pool state poisoned");
        while st.open > 0 {
            let Some(left) = deadline.checked_duration_since(Instant::now()) else {
                return false;
            };
            let (guard, _) = self
                .inner
                .idle_cv
                .wait_timeout(st, left)
                .expect("pool state poisoned");
            st = guard;
        }
        true
    }

    /// Graceful shutdown: refuses new submissions, lets the workers
    /// finish everything they can serve, fails anything left over
    /// (typed, so no job is silently lost), and joins the threads.
    /// Already-delivered outputs stay collectable. Idempotent.
    pub fn shutdown(&self) {
        {
            let mut st = self.inner.state.lock().expect("pool state poisoned");
            st.shutdown = true;
        }
        self.inner.work_cv.notify_all();
        let handles: Vec<JoinHandle<()>> = self
            .handles
            .lock()
            .expect("pool handles poisoned")
            .drain(..)
            .collect();
        for h in handles {
            // Worker panics are contained by the catch_unwind in the
            // run loop (the held job already failed typed); joining
            // must not re-raise during teardown.
            let _ = h.join();
        }
        // Workers exit past injector tasks they cannot serve (e.g. a
        // decrypt stranded by an earlier capability-narrowing resize):
        // fail every leftover task so its job completes and `wait_idle`
        // callers — and the clients behind them — are released.
        let (live, leftovers) = {
            let mut st = self.inner.state.lock().expect("pool state poisoned");
            let live = st.slots.iter().filter(|s| s.alive).count() + st.pending.len();
            let mut leftovers: Vec<Task> = st.injector.drain(..).collect();
            for s in st.slots.iter_mut() {
                leftovers.extend(s.queue.drain(..));
                s.alive = false;
            }
            st.pending.clear();
            (live, leftovers)
        };
        if live > 0 {
            self.workers_gauge.sub(live as i64);
        }
        self.inner.fail_tasks(leftovers);
    }
}

impl fmt::Debug for WorkerPool {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("WorkerPool")
            .field("workers", &self.workers())
            .field("open_jobs", &self.open_jobs())
            .field("capacity", &self.inner.capacity)
            .finish()
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        self.shutdown();
    }
}

impl Drop for Inner {
    fn drop(&mut self) {
        if let Ok(mut key) = self.key.lock() {
            rijndael::zeroize::wipe_bytes(&mut key);
        }
    }
}

/// Re-homes orphaned tasks: pinned streams to the least-loaded surviving
/// capable worker, parallel shards to the injector (when anyone can still
/// serve them). Returns the tasks nobody can run.
fn reroute(st: &mut State, tasks: Vec<Task>) -> Vec<Task> {
    let mut unroutable = Vec::new();
    for t in tasks {
        let dir = t.dir();
        if t.pinned {
            match st.least_loaded(dir) {
                Some(target) => st.slots[target].queue.push_back(t),
                None => unroutable.push(t),
            }
        } else if st.eligible(dir).is_empty() {
            unroutable.push(t);
        } else {
            st.injector.push_back(t);
        }
    }
    unroutable
}

/// What the worker loop decided to do next (chosen under the state lock,
/// acted on outside it).
enum Action {
    Run(Task),
    Install(Box<dyn Backend>),
    Exit,
}

/// Finds runnable work for worker `me`: own deque front, then the first
/// capable injector task, then a steal from the back of the longest
/// sibling deque (unpinned, capable tasks only). Returns whether the
/// task was stolen.
fn find_task(st: &mut State, me: usize) -> Option<(Task, bool)> {
    if let Some(t) = st.slots[me].queue.pop_front() {
        return Some((t, false));
    }
    let (enc, dec) = (st.slots[me].enc, st.slots[me].dec);
    let can = |dir: Direction| match dir {
        Direction::Encrypt => enc,
        Direction::Decrypt => dec,
    };
    if let Some(pos) = st.injector.iter().position(|t| can(t.dir())) {
        return st.injector.remove(pos).map(|t| (t, false));
    }
    let mut victims: Vec<usize> = (0..st.slots.len())
        .filter(|&i| i != me && st.slots[i].alive && !st.slots[i].queue.is_empty())
        .collect();
    victims.sort_by_key(|&i| std::cmp::Reverse(st.slots[i].queue.len()));
    for v in victims {
        let queue = &mut st.slots[v].queue;
        for pos in (0..queue.len()).rev() {
            if !queue[pos].pinned && can(queue[pos].dir()) {
                return queue.remove(pos).map(|t| (t, true));
            }
        }
    }
    None
}

/// Per-worker delta push of the owned backend's counters into the shared
/// registry — the same bookkeeping as `Engine::sync_telemetry`, owned by
/// the worker thread so no lock guards the authoritative counters.
struct CoreTel {
    blocks: Counter,
    cycles: Counter,
    setup_cycles: Counter,
    busy_cycles: Counter,
    occupancy: Histogram,
    last: (u64, u64, u64, u64),
}

impl CoreTel {
    fn register(registry: &Registry, index: usize, name: &str, occupancy: Histogram) -> CoreTel {
        let prefix = format!("engine.core.{index}.{name}");
        CoreTel {
            blocks: registry.counter(&format!("{prefix}.blocks")),
            cycles: registry.counter(&format!("{prefix}.cycles")),
            setup_cycles: registry.counter(&format!("{prefix}.setup_cycles")),
            busy_cycles: registry.counter(&format!("{prefix}.busy_cycles")),
            occupancy,
            last: (0, 0, 0, 0),
        }
    }

    fn sync(&mut self, backend: &dyn Backend) {
        let now = (
            backend.blocks(),
            backend.cycles(),
            backend.setup_cycles(),
            backend.busy_cycles(),
        );
        let last = self.last;
        self.last = now;
        self.blocks.add(now.0.saturating_sub(last.0));
        self.cycles.add(now.1.saturating_sub(last.1));
        self.setup_cycles.add(now.2.saturating_sub(last.2));
        self.busy_cycles.add(now.3.saturating_sub(last.3));
        let op_delta = now
            .1
            .saturating_sub(last.1)
            .saturating_sub(now.2.saturating_sub(last.2));
        let busy_delta = now.3.saturating_sub(last.3);
        if let Some(bp) = busy_delta.saturating_mul(10_000).checked_div(op_delta) {
            self.occupancy.record(bp);
        }
    }
}

fn worker_main(
    inner: Arc<Inner>,
    me: usize,
    mut backend: Box<dyn Backend>,
    steals: Counter,
    occupancy: Histogram,
) {
    let mut tel = CoreTel::register(&inner.registry, me, backend.name(), occupancy.clone());
    loop {
        let action = {
            let mut st = inner.state.lock().expect("pool state poisoned");
            loop {
                if let Some(next) = st.slots[me].swap.take() {
                    break Action::Install(next);
                }
                if !st.slots[me].alive {
                    break Action::Exit;
                }
                if let Some((task, stolen)) = find_task(&mut st, me) {
                    st.slots[me].busy = true;
                    if stolen {
                        steals.incr();
                    }
                    break Action::Run(task);
                }
                if st.shutdown {
                    break Action::Exit;
                }
                st = inner.work_cv.wait(st).expect("pool state poisoned");
            }
        };
        match action {
            Action::Run(task) => {
                let Task {
                    job, part, work, ..
                } = task;
                // Contain backend panics: an unwind through the run
                // loop would strand the held job (wait_idle hangs) and
                // poison the state mutex for every other thread. The
                // panic becomes a typed fault and the worker carries
                // on with the same backend.
                let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    execute(backend.as_mut(), work)
                }))
                .unwrap_or(Err(JobError::WorkerPanicked));
                tel.sync(backend.as_ref());
                inner.state.lock().expect("pool state poisoned").slots[me].busy = false;
                inner.finish_part(&job, part, result);
            }
            Action::Install(next) => {
                // Push the retiring backend's final deltas, drop it (IP
                // cores zero-reload their key schedule on drop), and
                // re-register counters under the new backend's name.
                tel.sync(backend.as_ref());
                backend = next;
                tel = CoreTel::register(&inner.registry, me, backend.name(), occupancy.clone());
            }
            Action::Exit => {
                tel.sync(backend.as_ref());
                return;
            }
        }
    }
}

/// Runs one task's work on the owning worker's backend, in place.
fn execute(backend: &mut dyn Backend, work: Work) -> Result<Vec<u8>, JobError> {
    match work {
        Work::EcbShard { dir, mut data } => run_ecb_span(backend, dir, &mut data).map(|()| data),
        Work::CtrShard {
            nonce,
            first_block,
            mut data,
        } => run_ctr_span(backend, &nonce, first_block, &mut data).map(|()| data),
        Work::Whole { mode, mut data } => run_on_one(backend, mode, &mut data).map(|()| data),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rijndael::modes::{Cbc, Ctr, Ecb};
    use rijndael::Aes128;
    use std::collections::BTreeMap;

    const KEY: [u8; 16] = [
        0x2B, 0x7E, 0x15, 0x16, 0x28, 0xAE, 0xD2, 0xA6, 0xAB, 0xF7, 0x15, 0x88, 0x09, 0xCF, 0x4F,
        0x3C,
    ];

    const WAIT: Duration = Duration::from_secs(10);

    fn sample(len: usize) -> Vec<u8> {
        (0..len).map(|i| (i * 7 + 3) as u8).collect()
    }

    fn collect_n(pool: &WorkerPool, n: usize) -> BTreeMap<JobId, Result<Vec<u8>, JobError>> {
        let mut out = BTreeMap::new();
        for _ in 0..n {
            let o = pool.collect_timeout(WAIT).expect("job completes in time");
            assert!(out.insert(o.id, o.data).is_none(), "duplicate completion");
        }
        out
    }

    #[test]
    fn parallel_and_chained_jobs_match_the_reference() {
        let pool = WorkerPool::with_farm(&KEY, &[BackendSpec::EncDecCore; 3], 8);
        let reference = Aes128::new(&KEY);
        let ecb_data = sample(24 * 16);
        let ctr_data = sample(10 * 16 + 5);
        let cbc_data = sample(5 * 16);
        let a = pool.try_submit(Mode::EcbEncrypt, ecb_data.clone()).unwrap();
        let b = pool
            .try_submit(Mode::Ctr([0xF0; 16]), ctr_data.clone())
            .unwrap();
        let c = pool
            .try_submit(Mode::CbcEncrypt([0x11; 16]), cbc_data.clone())
            .unwrap();
        let got = collect_n(&pool, 3);

        let mut expect = ecb_data;
        Ecb::encrypt(&reference, &mut expect).unwrap();
        assert_eq!(got[&a].as_ref().unwrap(), &expect);
        let mut expect = ctr_data;
        Ctr::apply(&reference, &[0xF0; 16], &mut expect);
        assert_eq!(got[&b].as_ref().unwrap(), &expect);
        let mut expect = cbc_data;
        Cbc::encrypt(&reference, &[0x11; 16], &mut expect).unwrap();
        assert_eq!(got[&c].as_ref().unwrap(), &expect);
    }

    #[test]
    fn busy_and_ragged_surface_at_the_submit_boundary() {
        let pool = WorkerPool::with_farm(&KEY, &[BackendSpec::Software], 2);
        assert_eq!(
            pool.try_submit(Mode::EcbEncrypt, sample(17)),
            Err(SubmitError::RaggedLength { len: 17 })
        );
        pool.try_submit(Mode::Ctr([0; 16]), sample(5)).unwrap();
        pool.try_submit(Mode::Ctr([0; 16]), sample(5)).unwrap();
        // The third submission may race the workers draining the first
        // two; only assert Busy when the pool is genuinely full.
        if pool.open_jobs() >= 2 {
            assert_eq!(
                pool.try_submit(Mode::Ctr([0; 16]), sample(5)),
                Err(SubmitError::Busy { capacity: 2 })
            );
        }
        pool.wait_idle();
        assert!(pool.try_submit(Mode::Ctr([0; 16]), sample(5)).is_ok());
        assert_eq!(collect_n(&pool, 3).len(), 3);
    }

    #[test]
    fn decrypt_on_an_encrypt_only_farm_fails_without_losing_the_job() {
        let pool = WorkerPool::with_farm(&KEY, &[BackendSpec::EncryptCore; 2], 4);
        let id = pool.try_submit(Mode::EcbDecrypt, sample(32)).unwrap();
        let out = pool.collect_timeout(WAIT).unwrap();
        assert_eq!(out.id, id);
        assert_eq!(
            out.data,
            Err(JobError::NoCapableCore {
                dir: Direction::Decrypt
            })
        );
        // Forward-datapath CTR still runs.
        pool.try_submit(Mode::Ctr([3; 16]), sample(32)).unwrap();
        assert!(pool.collect_timeout(WAIT).unwrap().data.is_ok());
    }

    #[test]
    fn empty_jobs_complete_immediately() {
        let pool = WorkerPool::with_farm(&KEY, &[BackendSpec::Software], 2);
        let id = pool.try_submit(Mode::EcbEncrypt, Vec::new()).unwrap();
        let out = pool.collect_timeout(WAIT).unwrap();
        assert_eq!(out.id, id);
        assert_eq!(out.data.unwrap(), Vec::<u8>::new());
    }

    #[test]
    fn grow_shrink_and_swap_under_load_lose_nothing() {
        let reg = Registry::new();
        let pool = PoolBuilder::new()
            .core(BackendSpec::Ttable)
            .capacity(64)
            .registry(reg.clone())
            .build(&KEY);
        let reference = Aes128::new(&KEY);
        let mut expected = BTreeMap::new();
        let mut submit = |pool: &WorkerPool, i: usize| {
            let data = sample(64 + (i % 7) * 16);
            let id = pool.try_submit(Mode::EcbEncrypt, data.clone()).unwrap();
            let mut e = data;
            Ecb::encrypt(&reference, &mut e).unwrap();
            expected.insert(id, e);
        };
        for i in 0..8 {
            submit(&pool, i);
        }
        let grown = pool.add_core(BackendSpec::Software);
        assert_eq!(pool.workers(), 2);
        for i in 8..16 {
            submit(&pool, i);
        }
        assert!(pool.swap_core(grown, BackendSpec::Bitsliced));
        for i in 16..24 {
            submit(&pool, i);
        }
        assert!(pool.remove_core(grown));
        assert_eq!(pool.workers(), 1);
        for i in 24..32 {
            submit(&pool, i);
        }
        let got = collect_n(&pool, 32);
        for (id, e) in &expected {
            assert_eq!(got[id].as_ref().unwrap(), e, "{id}");
        }
        let snap = reg.snapshot();
        assert_eq!(snap.counter("engine.resize.grow"), Some(1));
        assert_eq!(snap.counter("engine.resize.shrink"), Some(1));
        assert_eq!(snap.counter("engine.resize.swap"), Some(1));
        assert_eq!(snap.gauge("engine.workers"), Some(1));
        assert_eq!(snap.counter("engine.jobs.completed"), Some(32));
        assert_eq!(snap.counter("engine.jobs.failed"), Some(0));
    }

    #[test]
    fn removing_the_last_capable_worker_fails_orphaned_work_typed() {
        let pool = WorkerPool::with_farm(&KEY, &[BackendSpec::EncDecCore], 16);
        // Force the worker to start, then retire it with work queued.
        pool.try_submit(Mode::EcbEncrypt, sample(16)).unwrap();
        pool.wait_idle();
        for _ in 0..4 {
            pool.try_submit(Mode::CbcEncrypt([0; 16]), sample(16 * 16))
                .unwrap();
        }
        pool.remove_core(0);
        let mut seen = 0;
        let mut failed = 0;
        while let Some(out) = pool.collect_timeout(WAIT) {
            seen += 1;
            if out.data.is_err() {
                failed += 1;
            }
            if seen == 5 {
                break;
            }
        }
        // Every job completes (none lost); the ones the retirement
        // orphaned report NoCapableCore.
        assert_eq!(seen, 5);
        assert!(failed <= 4);
        // New submissions on the empty farm fail typed, immediately.
        let id = pool.try_submit(Mode::EcbEncrypt, sample(16)).unwrap();
        let out = pool.collect_timeout(WAIT).unwrap();
        assert_eq!(out.id, id);
        assert!(matches!(out.data, Err(JobError::NoCapableCore { .. })));
    }

    #[test]
    fn removing_the_last_decryptor_fails_stranded_injector_work() {
        // A decrypt job with exactly one eligible worker goes to the
        // injector as an unpinned Whole task. Retiring that worker must
        // not strand it there: either the worker ran it first, or the
        // removal fails it typed — never a hang.
        let pool = WorkerPool::with_farm(
            &KEY,
            &[BackendSpec::EncryptCore, BackendSpec::EncDecCore],
            16,
        );
        let id = pool.try_submit(Mode::EcbDecrypt, sample(32)).unwrap();
        assert!(pool.remove_core(1));
        let out = pool
            .collect_timeout(WAIT)
            .expect("the injector job completes despite the removal");
        assert_eq!(out.id, id);
        if let Err(e) = out.data {
            assert_eq!(
                e,
                JobError::NoCapableCore {
                    dir: Direction::Decrypt
                }
            );
        }
        pool.wait_idle(); // the capacity slot was released either way
    }

    #[test]
    fn swapping_away_the_last_decryptor_fails_stranded_injector_work() {
        let pool = WorkerPool::with_farm(
            &KEY,
            &[BackendSpec::EncryptCore, BackendSpec::EncDecCore],
            16,
        );
        let id = pool.try_submit(Mode::EcbDecrypt, sample(32)).unwrap();
        assert!(pool.swap_core(1, BackendSpec::EncryptCore));
        let out = pool
            .collect_timeout(WAIT)
            .expect("the injector job completes despite the swap");
        assert_eq!(out.id, id);
        pool.wait_idle();
        // And shutdown still drains cleanly afterwards.
        pool.shutdown();
    }

    #[test]
    fn autoscale_ignores_neighbor_pool_backlog() {
        // Two session pools share one service registry. A's backlog
        // drives the shared engine.queue.depth gauge high; B, nearly
        // idle, must not grow on its neighbor's pressure.
        let reg = Registry::new();
        let a = PoolBuilder::new()
            .core(BackendSpec::Ttable)
            .capacity(64)
            .registry(reg.clone())
            .build(&KEY);
        let b = PoolBuilder::new()
            .core(BackendSpec::Ttable)
            .capacity(64)
            .registry(reg.clone())
            .build(&KEY);
        for _ in 0..16 {
            a.try_submit(Mode::EcbEncrypt, sample(64 * 16)).unwrap();
        }
        b.try_submit(Mode::EcbEncrypt, sample(64 * 16)).unwrap();
        let policy = ResizePolicy {
            grow_depth: 4,
            spec: BackendSpec::Software,
            ..ResizePolicy::default()
        };
        assert_eq!(
            b.autoscale_tick(&policy),
            None,
            "one own open job is below grow_depth, whatever the shared gauge says"
        );
        a.wait_idle();
        b.wait_idle();
    }

    #[test]
    fn swap_is_visible_in_farm_stats_under_both_names() {
        let reg = Registry::new();
        let pool = PoolBuilder::new()
            .core(BackendSpec::Ttable)
            .capacity(8)
            .registry(reg.clone())
            .build(&KEY);
        pool.try_submit(Mode::EcbEncrypt, sample(8 * 16)).unwrap();
        pool.wait_idle();
        pool.swap_core(0, BackendSpec::Software);
        pool.try_submit(Mode::EcbEncrypt, sample(8 * 16)).unwrap();
        pool.wait_idle();
        pool.shutdown();
        let stats = crate::FarmStats::from_snapshot(&reg.snapshot());
        let lines: Vec<(usize, &str, u64)> = stats
            .per_core
            .iter()
            .map(|c| (c.index, c.name.as_str(), c.blocks))
            .collect();
        assert_eq!(
            lines,
            vec![(0, "soft-ref", 8), (0, "soft-ttable", 8)],
            "both backends that lived in slot 0 report their own blocks"
        );
    }

    #[test]
    fn autoscale_grows_under_pressure_and_shrinks_when_idle() {
        let reg = Registry::new();
        let pool = PoolBuilder::new()
            .core(BackendSpec::Ttable)
            .capacity(64)
            .registry(reg.clone())
            .build(&KEY);
        let policy = ResizePolicy {
            min_workers: 1,
            max_workers: 3,
            grow_depth: 4,
            shrink_after_ticks: 2,
            busy_occupancy_bp: 10_001, // never block shrink in this test
            spec: BackendSpec::Software,
        };
        for _ in 0..16 {
            pool.try_submit(Mode::EcbEncrypt, sample(32 * 16)).unwrap();
        }
        // Depth is high: the tick must grow (possibly repeatedly).
        let grew = pool.autoscale_tick(&policy);
        assert!(matches!(grew, Some(ResizeAction::Grew(_))), "{grew:?}");
        pool.wait_idle();
        for _ in 0..16 {
            let _ = pool.try_collect();
        }
        // Idle: two consecutive ticks shrink back.
        assert_eq!(pool.autoscale_tick(&policy), None);
        assert!(matches!(
            pool.autoscale_tick(&policy),
            Some(ResizeAction::Shrank(_))
        ));
        assert_eq!(pool.workers(), 1);
        assert!(reg.snapshot().counter("engine.resize.grow") >= Some(1));
        assert_eq!(reg.snapshot().counter("engine.resize.shrink"), Some(1));
    }

    #[test]
    fn notifier_fires_once_per_completion() {
        use std::sync::atomic::AtomicUsize;
        let pool = WorkerPool::with_farm(&KEY, &[BackendSpec::Software; 2], 8);
        let fired = Arc::new(AtomicUsize::new(0));
        let counter = Arc::clone(&fired);
        pool.set_notifier(Arc::new(move || {
            counter.fetch_add(1, Ordering::SeqCst);
        }));
        for _ in 0..5 {
            pool.try_submit(Mode::Ctr([0; 16]), sample(40)).unwrap();
        }
        assert_eq!(collect_n(&pool, 5).len(), 5);
        pool.wait_idle();
        assert_eq!(fired.load(Ordering::SeqCst), 5);
    }

    #[test]
    fn shutdown_finishes_queued_work_and_refuses_new_jobs() {
        let pool = WorkerPool::with_farm(&KEY, &[BackendSpec::Ttable], 16);
        for _ in 0..6 {
            pool.try_submit(Mode::EcbEncrypt, sample(16 * 16)).unwrap();
        }
        pool.shutdown();
        assert_eq!(
            pool.try_submit(Mode::EcbEncrypt, sample(16)),
            Err(SubmitError::Busy { capacity: 16 })
        );
        assert_eq!(collect_n(&pool, 6).len(), 6);
    }

    #[test]
    fn pool_is_send_and_sync() {
        fn assert_both<T: Send + Sync>() {}
        assert_both::<WorkerPool>();
        assert_both::<ResizePolicy>();
    }

    #[test]
    #[should_panic(expected = "at least one backend")]
    fn builder_panics_on_an_empty_farm() {
        let _ = PoolBuilder::new().build(&KEY);
    }
}

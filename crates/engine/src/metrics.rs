//! Per-core and farm-aggregate throughput accounting.
//!
//! The interesting figure for the paper's Table 2 is cycles/block: one IP
//! core sustains ~[`LATENCY_CYCLES`](aes_ip::core::LATENCY_CYCLES) cycles
//! per block once its decoupled bus is kept saturated, and a farm of `k`
//! cores divides that by `k` in wall-clock terms because the cores clock
//! concurrently. The engine models that concurrency in *virtual time*:
//! each core carries its own cycle counter and the farm's wall clock is
//! the maximum over them.

use core::fmt;
use std::fmt::Write as _;

/// Snapshot of one farm member's counters.
#[derive(Debug, Clone, PartialEq)]
pub struct CoreMetrics {
    /// Backend name (`ip-encrypt`, `soft-ref`, …).
    pub name: &'static str,
    /// Blocks the backend processed.
    pub blocks: u64,
    /// Total virtual cycles, key setup included.
    pub cycles: u64,
    /// Cycles spent processing blocks after key setup — the core's
    /// contribution to the farm wall clock.
    pub operation_cycles: u64,
    /// Cycles the datapath was computing (occupancy numerator).
    pub busy_cycles: u64,
    /// Datapath occupancy in percent: `busy / operation × 100`
    /// (100 for an idle core that was never asked to work).
    pub occupancy_pct: f64,
    /// Mean operation cycles per block (0 for an idle core).
    pub cycles_per_block: f64,
}

/// Farm-aggregate snapshot.
#[derive(Debug, Clone, PartialEq)]
pub struct EngineMetrics {
    /// One entry per farm slot, in farm order.
    pub per_core: Vec<CoreMetrics>,
    /// Blocks processed across the farm.
    pub total_blocks: u64,
    /// Virtual wall-clock cycles: the cores clock concurrently, so this
    /// is the *maximum* per-core operation time, not the sum.
    pub wall_cycles: u64,
    /// Aggregate throughput figure: `wall_cycles / total_blocks`.
    pub cycles_per_block: f64,
}

impl EngineMetrics {
    /// Builds the aggregate view from per-core snapshots.
    #[must_use]
    pub fn from_cores(per_core: Vec<CoreMetrics>) -> Self {
        let total_blocks = per_core.iter().map(|c| c.blocks).sum();
        let wall_cycles = per_core
            .iter()
            .map(|c| c.operation_cycles)
            .max()
            .unwrap_or(0);
        let cycles_per_block = if total_blocks == 0 {
            0.0
        } else {
            wall_cycles as f64 / total_blocks as f64
        };
        EngineMetrics {
            per_core,
            total_blocks,
            wall_cycles,
            cycles_per_block,
        }
    }

    /// Minimum occupancy over the cores that did any work (100 when the
    /// whole farm idled) — the saturation criterion for scaling reports.
    #[must_use]
    pub fn min_occupancy_pct(&self) -> f64 {
        self.per_core
            .iter()
            .filter(|c| c.blocks > 0)
            .map(|c| c.occupancy_pct)
            .fold(f64::INFINITY, f64::min)
            .min(100.0)
    }

    /// Renders a fixed-width text table in the style of the repo's other
    /// report binaries.
    #[must_use]
    pub fn report(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:<12} {:>8} {:>10} {:>10} {:>11} {:>12}",
            "core", "blocks", "op cycles", "busy", "occupancy", "cycles/block"
        );
        for c in &self.per_core {
            let _ = writeln!(
                out,
                "{:<12} {:>8} {:>10} {:>10} {:>10.1}% {:>12.2}",
                c.name,
                c.blocks,
                c.operation_cycles,
                c.busy_cycles,
                c.occupancy_pct,
                c.cycles_per_block
            );
        }
        let _ = writeln!(
            out,
            "farm: {} blocks in {} wall cycles = {:.2} cycles/block",
            self.total_blocks, self.wall_cycles, self.cycles_per_block
        );
        out
    }
}

impl fmt::Display for EngineMetrics {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.report())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn core(name: &'static str, blocks: u64, op: u64, busy: u64) -> CoreMetrics {
        CoreMetrics {
            name,
            blocks,
            cycles: op,
            operation_cycles: op,
            busy_cycles: busy,
            occupancy_pct: if op == 0 {
                100.0
            } else {
                100.0 * busy as f64 / op as f64
            },
            cycles_per_block: if blocks == 0 {
                0.0
            } else {
                op as f64 / blocks as f64
            },
        }
    }

    #[test]
    fn wall_clock_is_the_maximum_not_the_sum() {
        let m = EngineMetrics::from_cores(vec![
            core("a", 8, 401, 400),
            core("b", 8, 401, 400),
            core("c", 4, 201, 200),
        ]);
        assert_eq!(m.total_blocks, 20);
        assert_eq!(m.wall_cycles, 401);
        assert!((m.cycles_per_block - 401.0 / 20.0).abs() < 1e-9);
    }

    #[test]
    fn min_occupancy_ignores_idle_cores() {
        let m = EngineMetrics::from_cores(vec![core("a", 8, 401, 400), core("b", 0, 0, 0)]);
        assert!((m.min_occupancy_pct() - 100.0 * 400.0 / 401.0).abs() < 1e-9);

        let idle = EngineMetrics::from_cores(vec![core("b", 0, 0, 0)]);
        assert_eq!(idle.min_occupancy_pct(), 100.0);
    }

    #[test]
    fn empty_farm_divides_by_nothing() {
        let m = EngineMetrics::from_cores(Vec::new());
        assert_eq!(m.total_blocks, 0);
        assert_eq!(m.wall_cycles, 0);
        assert_eq!(m.cycles_per_block, 0.0);
    }

    #[test]
    fn report_lists_every_core_and_the_farm_line() {
        let m = EngineMetrics::from_cores(vec![core("ip-encrypt", 8, 401, 400)]);
        let text = m.report();
        assert!(text.contains("ip-encrypt"));
        assert!(text.contains("farm: 8 blocks"));
        assert_eq!(text, m.to_string());
    }
}

//! The [`Backend`] abstraction: one uniform face over the paper's three
//! hardware devices and the two software implementations.
//!
//! A backend is *stateful* (hardware models count clock cycles; every
//! backend counts blocks) and *mutable* (the bus driver wiggles pins), so
//! unlike [`rijndael::BlockCipher`] its methods take `&mut self` and are
//! fallible: a wedged core or an unsupported direction is reported, never
//! aborted on. Virtual time is the unifying cost model — hardware
//! backends report real modeled clock cycles ([`LATENCY_CYCLES`] per
//! block in steady state), software backends a nominal one cycle per
//! block so scheduler arithmetic stays uniform.

use core::fmt;

use aes_ip::bus::{IpDriver, StreamError};
use aes_ip::core::{CycleCore, DecryptCore, Direction, EncDecCore, EncryptCore, LATENCY_CYCLES};
use rijndael::ttable::TtableAes;
use rijndael::{Aes128, Bitsliced8, BlockCipher};

/// Which backend a farm slot holds; the unit of farm configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BackendSpec {
    /// Cycle-accurate encrypt-only IP core behind its bus driver.
    EncryptCore,
    /// Cycle-accurate decrypt-only IP core behind its bus driver.
    DecryptCore,
    /// Cycle-accurate combined encrypt/decrypt IP core.
    EncDecCore,
    /// The golden software reference ([`Aes128`]).
    Software,
    /// The era-typical 32-bit T-table software implementation.
    Ttable,
    /// The constant-time bitsliced software implementation with a real
    /// multi-block batch path ([`Bitsliced8`]).
    Bitsliced,
}

impl BackendSpec {
    /// Every spec, in a stable order (useful for exhaustive test sweeps).
    pub const ALL: [BackendSpec; 6] = [
        BackendSpec::EncryptCore,
        BackendSpec::DecryptCore,
        BackendSpec::EncDecCore,
        BackendSpec::Software,
        BackendSpec::Ttable,
        BackendSpec::Bitsliced,
    ];

    /// Builds the backend with `key` loaded and ready.
    #[must_use]
    pub fn build(self, key: &[u8; 16]) -> Box<dyn Backend> {
        match self {
            BackendSpec::EncryptCore => {
                Box::new(IpCoreBackend::new(EncryptCore::new(), key, "ip-encrypt"))
            }
            BackendSpec::DecryptCore => {
                Box::new(IpCoreBackend::new(DecryptCore::new(), key, "ip-decrypt"))
            }
            BackendSpec::EncDecCore => {
                Box::new(IpCoreBackend::new(EncDecCore::new(), key, "ip-encdec"))
            }
            BackendSpec::Software => Box::new(SoftwareBackend::new(Aes128::new(key), "soft-ref")),
            BackendSpec::Ttable => Box::new(SoftwareBackend::new(
                TtableAes::new(key).expect("16-byte key is a valid AES key"),
                "soft-ttable",
            )),
            BackendSpec::Bitsliced => Box::new(BitslicedBackend::new(key)),
        }
    }
}

impl fmt::Display for BackendSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            BackendSpec::EncryptCore => "ip-encrypt",
            BackendSpec::DecryptCore => "ip-decrypt",
            BackendSpec::EncDecCore => "ip-encdec",
            BackendSpec::Software => "soft-ref",
            BackendSpec::Ttable => "soft-ttable",
            BackendSpec::Bitsliced => "soft-bitsliced",
        };
        f.write_str(s)
    }
}

/// Failure of one backend operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BackendError {
    /// The backend has no datapath for the requested direction.
    Unsupported {
        /// Name of the rejecting backend.
        backend: &'static str,
        /// The direction it cannot process.
        dir: Direction,
    },
    /// The bus driver reported a streaming fault (wedge, mid-stream key
    /// change, busy core).
    Bus(StreamError),
}

impl fmt::Display for BackendError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BackendError::Unsupported { backend, dir } => {
                let verb = match dir {
                    Direction::Encrypt => "encrypt",
                    Direction::Decrypt => "decrypt",
                };
                write!(f, "backend {backend} cannot {verb}")
            }
            BackendError::Bus(e) => write!(f, "bus fault: {e}"),
        }
    }
}

impl std::error::Error for BackendError {}

impl From<StreamError> for BackendError {
    fn from(e: StreamError) -> Self {
        BackendError::Bus(e)
    }
}

/// One farm member: a block processor with a virtual-time cost model.
///
/// The trait is object-safe; the scheduler holds `Box<dyn Backend>`.
/// `Send` is a supertrait so a whole [`Engine`](crate::Engine) can move
/// into a worker thread — the TCP service crate builds one engine per
/// connection handler this way.
pub trait Backend: Send {
    /// Short stable name for metrics and reports.
    fn name(&self) -> &'static str;

    /// `true` when the backend can process blocks in `dir`.
    fn supports(&self, dir: Direction) -> bool;

    /// Processes one block in place, blocking until done (chained modes
    /// feed blocks one at a time through this).
    ///
    /// # Errors
    ///
    /// [`BackendError::Unsupported`] for a direction the backend lacks;
    /// [`BackendError::Bus`] for hardware streaming faults.
    fn process_block(&mut self, block: &mut [u8; 16], dir: Direction) -> Result<(), BackendError>;

    /// Processes a batch of independent blocks in place. Hardware
    /// backends pipeline the batch through the decoupled `Data_In`/`Out`
    /// bus so steady-state cost approaches [`LATENCY_CYCLES`] per block.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Backend::process_block`].
    fn process_stream(
        &mut self,
        blocks: &mut [[u8; 16]],
        dir: Direction,
    ) -> Result<(), BackendError>;

    /// Processes a batch of independent blocks in place through the
    /// backend's widest datapath. The default walks the batch one
    /// [`Backend::process_block`] at a time; backends with a genuinely
    /// wider path override it — the IP cores pipeline the batch across
    /// the decoupled bus, and the bitsliced backend runs whole
    /// multi-block passes. The scheduler's sharded ECB/CTR paths submit
    /// through this method, sized in multiples of 8 blocks so bitsliced
    /// granules stay full.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Backend::process_block`].
    fn process_batch(
        &mut self,
        blocks: &mut [[u8; 16]],
        dir: Direction,
    ) -> Result<(), BackendError> {
        for block in blocks.iter_mut() {
            self.process_block(block, dir)?;
        }
        Ok(())
    }

    /// Blocks processed so far.
    fn blocks(&self) -> u64;

    /// Total virtual clock cycles consumed, key setup included.
    fn cycles(&self) -> u64;

    /// Cycles spent on one-time key setup (excluded from occupancy).
    fn setup_cycles(&self) -> u64;

    /// Cycles the datapath spent computing blocks — the occupancy
    /// numerator ([`LATENCY_CYCLES`] × blocks on hardware).
    fn busy_cycles(&self) -> u64;
}

/// A cycle-accurate IP core behind its bus driver, exposed as a
/// [`Backend`].
#[derive(Debug, Clone)]
pub struct IpCoreBackend<C: CycleCore> {
    driver: IpDriver<C>,
    name: &'static str,
    setup_cycles: u64,
    blocks: u64,
}

impl<C: CycleCore> IpCoreBackend<C> {
    /// Wraps `core`, loads `key` (paying the real key-setup cycles), and
    /// labels the backend `name` for reports.
    #[must_use]
    pub fn new(core: C, key: &[u8; 16], name: &'static str) -> Self {
        let mut driver = IpDriver::new(core);
        driver.write_key(key);
        let setup_cycles = driver.cycles();
        IpCoreBackend {
            driver,
            name,
            setup_cycles,
            blocks: 0,
        }
    }

    /// The wrapped bus driver (cycle counter included).
    #[must_use]
    pub fn driver(&self) -> &IpDriver<C> {
        &self.driver
    }
}

impl<C: CycleCore> Drop for IpCoreBackend<C> {
    /// Best-effort key hygiene, mirroring the software ciphers' on-drop
    /// wipe: reload an all-zero key so neither the modeled key register
    /// nor the walked decrypt schedule still holds the session key.
    fn drop(&mut self) {
        self.driver.write_key(&[0u8; 16]);
    }
}

impl<C: CycleCore + Send> Backend for IpCoreBackend<C> {
    fn name(&self) -> &'static str {
        self.name
    }

    fn supports(&self, dir: Direction) -> bool {
        let v = self.driver.core().variant();
        match dir {
            Direction::Encrypt => v.supports_encrypt(),
            Direction::Decrypt => v.supports_decrypt(),
        }
    }

    fn process_block(&mut self, block: &mut [u8; 16], dir: Direction) -> Result<(), BackendError> {
        *block = self.driver.try_process_block(block, dir)?;
        self.blocks += 1;
        Ok(())
    }

    fn process_stream(
        &mut self,
        blocks: &mut [[u8; 16]],
        dir: Direction,
    ) -> Result<(), BackendError> {
        let results = self.driver.try_process_stream(blocks, dir)?;
        for (b, r) in blocks.iter_mut().zip(results) {
            *b = r;
        }
        self.blocks += blocks.len() as u64;
        Ok(())
    }

    fn process_batch(
        &mut self,
        blocks: &mut [[u8; 16]],
        dir: Direction,
    ) -> Result<(), BackendError> {
        // The bus pipeline is the hardware's widest path.
        self.process_stream(blocks, dir)
    }

    fn blocks(&self) -> u64 {
        self.blocks
    }

    fn cycles(&self) -> u64 {
        self.driver.cycles()
    }

    fn setup_cycles(&self) -> u64 {
        self.setup_cycles
    }

    fn busy_cycles(&self) -> u64 {
        LATENCY_CYCLES * self.blocks
    }
}

/// A software cipher as a [`Backend`]: no clock, so virtual time is a
/// nominal one cycle per block (occupancy is by definition 100%).
///
/// Key hygiene rides on the wrapped cipher: [`Aes128`] and [`TtableAes`]
/// wipe their expanded schedules when the backend is dropped (see
/// `rijndael::zeroize`).
#[derive(Debug, Clone)]
pub struct SoftwareBackend<B> {
    cipher: B,
    name: &'static str,
    blocks: u64,
}

impl<B: BlockCipher> SoftwareBackend<B> {
    /// Wraps a 16-byte-block cipher as a farm member labeled `name`.
    ///
    /// # Panics
    ///
    /// Panics if the cipher's block length is not 16 bytes.
    #[must_use]
    pub fn new(cipher: B, name: &'static str) -> Self {
        assert_eq!(cipher.block_len(), 16, "the engine schedules AES blocks");
        SoftwareBackend {
            cipher,
            name,
            blocks: 0,
        }
    }
}

impl<B: BlockCipher + Send> Backend for SoftwareBackend<B> {
    fn name(&self) -> &'static str {
        self.name
    }

    fn supports(&self, _dir: Direction) -> bool {
        true
    }

    fn process_block(&mut self, block: &mut [u8; 16], dir: Direction) -> Result<(), BackendError> {
        match dir {
            Direction::Encrypt => self.cipher.encrypt_in_place(block),
            Direction::Decrypt => self.cipher.decrypt_in_place(block),
        }
        self.blocks += 1;
        Ok(())
    }

    fn process_stream(
        &mut self,
        blocks: &mut [[u8; 16]],
        dir: Direction,
    ) -> Result<(), BackendError> {
        for block in blocks.iter_mut() {
            match dir {
                Direction::Encrypt => self.cipher.encrypt_in_place(block),
                Direction::Decrypt => self.cipher.decrypt_in_place(block),
            }
        }
        self.blocks += blocks.len() as u64;
        Ok(())
    }

    fn blocks(&self) -> u64 {
        self.blocks
    }

    fn cycles(&self) -> u64 {
        self.blocks
    }

    fn setup_cycles(&self) -> u64 {
        0
    }

    fn busy_cycles(&self) -> u64 {
        self.blocks
    }
}

/// The bitsliced software cipher as a [`Backend`] with a real batch path.
///
/// Single blocks (chained modes) go through a padded 8-block granule —
/// correct but slow, which is exactly the backend's contract: it earns
/// its keep on [`Backend::process_batch`], where whole 64-block passes
/// make it the fastest software farm member on bulk ECB/CTR work. Cost
/// model matches [`SoftwareBackend`]: a nominal cycle per block.
#[derive(Debug, Clone)]
pub struct BitslicedBackend {
    cipher: Bitsliced8,
    blocks: u64,
}

impl BitslicedBackend {
    /// Builds the backend with `key` expanded and broadcast.
    #[must_use]
    pub fn new(key: &[u8; 16]) -> Self {
        BitslicedBackend {
            cipher: Bitsliced8::new(key),
            blocks: 0,
        }
    }
}

impl Backend for BitslicedBackend {
    fn name(&self) -> &'static str {
        "soft-bitsliced"
    }

    fn supports(&self, _dir: Direction) -> bool {
        true
    }

    fn process_block(&mut self, block: &mut [u8; 16], dir: Direction) -> Result<(), BackendError> {
        match dir {
            Direction::Encrypt => self.cipher.encrypt_in_place(block),
            Direction::Decrypt => self.cipher.decrypt_in_place(block),
        }
        self.blocks += 1;
        Ok(())
    }

    fn process_stream(
        &mut self,
        blocks: &mut [[u8; 16]],
        dir: Direction,
    ) -> Result<(), BackendError> {
        self.process_batch(blocks, dir)
    }

    fn process_batch(
        &mut self,
        blocks: &mut [[u8; 16]],
        dir: Direction,
    ) -> Result<(), BackendError> {
        match dir {
            Direction::Encrypt => self.cipher.encrypt_blocks(blocks),
            Direction::Decrypt => self.cipher.decrypt_blocks(blocks),
        }
        self.blocks += blocks.len() as u64;
        Ok(())
    }

    fn blocks(&self) -> u64 {
        self.blocks
    }

    fn cycles(&self) -> u64 {
        self.blocks
    }

    fn setup_cycles(&self) -> u64 {
        0
    }

    fn busy_cycles(&self) -> u64 {
        self.blocks
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rijndael::vectors::FIPS197_C1;

    fn fips_key() -> [u8; 16] {
        let mut k = [0u8; 16];
        k.copy_from_slice(FIPS197_C1.key);
        k
    }

    #[test]
    fn every_spec_builds_and_encrypts_or_declines() {
        let key = fips_key();
        for spec in BackendSpec::ALL {
            let mut backend = spec.build(&key);
            assert_eq!(backend.name(), spec.to_string());
            if backend.supports(Direction::Encrypt) {
                let mut block = FIPS197_C1.plaintext;
                backend
                    .process_block(&mut block, Direction::Encrypt)
                    .unwrap();
                assert_eq!(block, FIPS197_C1.ciphertext, "{spec}");
                assert_eq!(backend.blocks(), 1);
            } else {
                let mut block = FIPS197_C1.plaintext;
                let err = backend
                    .process_block(&mut block, Direction::Encrypt)
                    .unwrap_err();
                assert!(err.to_string().contains("cannot encrypt"), "{spec}: {err}");
            }
        }
    }

    #[test]
    fn hardware_stream_costs_latency_per_block() {
        let mut backend = IpCoreBackend::new(EncryptCore::new(), &fips_key(), "ip-encrypt");
        let before = backend.cycles();
        let mut blocks = [[0u8; 16]; 4];
        backend
            .process_stream(&mut blocks, Direction::Encrypt)
            .unwrap();
        let spent = backend.cycles() - before;
        // One load edge then one block per latency period.
        assert_eq!(spent, 1 + 4 * LATENCY_CYCLES);
        assert_eq!(backend.busy_cycles(), 4 * LATENCY_CYCLES);
        assert_eq!(backend.setup_cycles(), 1); // encrypt-only: key edge only
    }

    #[test]
    fn decrypt_only_backend_reports_unsupported_encrypt() {
        let mut backend = BackendSpec::DecryptCore.build(&fips_key());
        assert!(!backend.supports(Direction::Encrypt));
        let mut blocks = [[0u8; 16]; 2];
        let err = backend
            .process_stream(&mut blocks, Direction::Encrypt)
            .unwrap_err();
        assert!(matches!(err, BackendError::Bus(_)), "{err:?}");
    }

    #[test]
    fn software_backends_agree_with_each_other() {
        let key = fips_key();
        let mut soft = BackendSpec::Software.build(&key);
        let mut ttable = BackendSpec::Ttable.build(&key);
        let mut a = [[7u8; 16]; 3];
        let mut b = a;
        soft.process_stream(&mut a, Direction::Encrypt).unwrap();
        ttable.process_stream(&mut b, Direction::Encrypt).unwrap();
        assert_eq!(a, b);
        assert_eq!(soft.cycles(), 3); // one nominal cycle per block
        assert_eq!(soft.busy_cycles(), 3);
    }

    #[test]
    fn every_backend_rekeys_cleanly_after_drop() {
        // The on-drop wipe (zero-key reload on hardware, schedule wipe in
        // software) must leave nothing behind that corrupts a fresh
        // backend built from the same key bytes.
        let key = fips_key();
        for spec in BackendSpec::ALL {
            drop(spec.build(&key));
            let mut fresh = spec.build(&key);
            if !fresh.supports(Direction::Encrypt) {
                continue;
            }
            let mut block = FIPS197_C1.plaintext;
            fresh.process_block(&mut block, Direction::Encrypt).unwrap();
            assert_eq!(block, FIPS197_C1.ciphertext, "{spec} after re-key");
        }
    }

    #[test]
    fn process_batch_matches_process_block_for_every_spec() {
        let key = fips_key();
        for spec in BackendSpec::ALL {
            for dir in [Direction::Encrypt, Direction::Decrypt] {
                let mut batch_backend = spec.build(&key);
                if !batch_backend.supports(dir) {
                    continue;
                }
                let blocks: Vec<[u8; 16]> =
                    (0..23u8).map(|i| [i.wrapping_mul(11) ^ 0x3C; 16]).collect();
                let mut via_batch = blocks.clone();
                batch_backend.process_batch(&mut via_batch, dir).unwrap();
                assert_eq!(batch_backend.blocks(), 23, "{spec} {dir:?}");

                let mut block_backend = spec.build(&key);
                let mut via_block = blocks;
                for b in &mut via_block {
                    block_backend.process_block(b, dir).unwrap();
                }
                assert_eq!(via_batch, via_block, "{spec} {dir:?}");
            }
        }
    }

    #[test]
    fn bitsliced_backend_agrees_with_the_reference_on_a_wide_batch() {
        let key = fips_key();
        let mut sliced = BackendSpec::Bitsliced.build(&key);
        let mut reference = BackendSpec::Software.build(&key);
        let blocks: Vec<[u8; 16]> = (0..100u8).map(|i| [i ^ 0xA7; 16]).collect();
        let mut a = blocks.clone();
        let mut b = blocks;
        sliced.process_batch(&mut a, Direction::Encrypt).unwrap();
        reference.process_batch(&mut b, Direction::Encrypt).unwrap();
        assert_eq!(a, b);
        assert_eq!(sliced.cycles(), 100); // nominal software cost model
        assert_eq!(sliced.busy_cycles(), 100);
        assert_eq!(sliced.setup_cycles(), 0);
    }

    #[test]
    fn backends_are_send() {
        fn assert_send<T: Send>(_: T) {}
        for spec in BackendSpec::ALL {
            assert_send(spec.build(&fips_key()));
        }
    }

    #[test]
    fn backend_error_formats() {
        let e = BackendError::Unsupported {
            backend: "ip-decrypt",
            dir: Direction::Encrypt,
        };
        assert!(e.to_string().contains("ip-decrypt cannot encrypt"));
        let bus: BackendError = StreamError::CoreBusy.into();
        assert!(bus.to_string().contains("busy"));
    }
}

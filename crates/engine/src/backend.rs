//! The [`Backend`] abstraction: one uniform face over the paper's three
//! hardware devices and the two software implementations.
//!
//! A backend is *stateful* (hardware models count clock cycles; every
//! backend counts blocks) and *mutable* (the bus driver wiggles pins), so
//! unlike [`rijndael::BlockCipher`] its methods take `&mut self` and are
//! fallible: a wedged core or an unsupported direction is reported, never
//! aborted on. Virtual time is the unifying cost model — hardware
//! backends report real modeled clock cycles ([`LATENCY_CYCLES`] per
//! block in steady state), software backends a nominal one cycle per
//! block so scheduler arithmetic stays uniform.

use core::fmt;
use std::time::Duration;

use aes_ip::bus::{IpDriver, StreamError};
use aes_ip::core::{CycleCore, DecryptCore, Direction, EncDecCore, EncryptCore, LATENCY_CYCLES};
use rijndael::dispatch::{self, AutoCipher, Kind};
use rijndael::ttable::TtableAes;
use rijndael::{Bitsliced8, BlockCipher, Rijndael};

/// Which backend a farm slot holds; the unit of farm configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BackendSpec {
    /// Cycle-accurate encrypt-only IP core behind its bus driver.
    EncryptCore,
    /// Cycle-accurate decrypt-only IP core behind its bus driver.
    DecryptCore,
    /// Cycle-accurate combined encrypt/decrypt IP core.
    EncDecCore,
    /// The golden software reference ([`Rijndael<4>`], any AES key
    /// size).
    Software,
    /// The era-typical 32-bit T-table software implementation.
    Ttable,
    /// The constant-time bitsliced software implementation with a real
    /// multi-block batch path ([`Bitsliced8`]).
    Bitsliced,
    /// The hardware AES instructions (AES-NI on x86_64, the ARMv8
    /// Cryptography Extension on aarch64). Only buildable when the
    /// runtime probe finds them — see [`BackendSpec::available`].
    AesNi,
    /// Runtime dispatch: whatever backend the process-wide
    /// [`rijndael::dispatch::selection`] micro-race picked (or
    /// `RIJNDAEL_FORCE_BACKEND` pinned). The built backend reports the
    /// *resolved* name (`soft-aesni`, `soft-bitsliced-wide`, ...) so the
    /// decision is visible in telemetry and `GET_STATS`.
    Auto,
    /// A T-table software core throttled to `block_ns` nanoseconds per
    /// block via [`PacedBackend`]. Models a farm of independently
    /// clocked hardware cores: the pacing sleeps overlap across worker
    /// threads even on a single host CPU, so wall-clock scaling
    /// measurements reflect the paper's deployment (one IP core per bus
    /// slot), not the benchmark host's core count. Used by the scaling
    /// gates; not part of [`BackendSpec::detected`].
    Paced {
        /// Modeled per-block processing time, nanoseconds.
        block_ns: u32,
    },
}

impl BackendSpec {
    /// Every unconditionally-available spec, in a stable order (useful
    /// for exhaustive test sweeps). [`BackendSpec::AesNi`] and
    /// [`BackendSpec::Auto`] are deliberately absent: the former only
    /// exists on CPUs that pass the probe, the latter resolves *to* one
    /// of the others — see [`BackendSpec::detected`].
    pub const ALL: [BackendSpec; 6] = [
        BackendSpec::EncryptCore,
        BackendSpec::DecryptCore,
        BackendSpec::EncDecCore,
        BackendSpec::Software,
        BackendSpec::Ttable,
        BackendSpec::Bitsliced,
    ];

    /// `true` when this spec can be built on this host — everything in
    /// [`BackendSpec::ALL`] always, [`BackendSpec::AesNi`] only after the
    /// runtime CPU probe succeeds, [`BackendSpec::Auto`] always (it
    /// resolves to an available backend by construction).
    #[must_use]
    pub fn available(self) -> bool {
        match self {
            BackendSpec::AesNi => Kind::AesNi.available() || Kind::Neon.available(),
            _ => true,
        }
    }

    /// Every spec buildable on this host: [`BackendSpec::ALL`] plus
    /// [`BackendSpec::AesNi`] when the hardware has it.
    #[must_use]
    pub fn detected() -> Vec<BackendSpec> {
        let mut specs = BackendSpec::ALL.to_vec();
        if BackendSpec::AesNi.available() {
            specs.push(BackendSpec::AesNi);
        }
        specs
    }

    /// Builds the backend with `key` (16, 24, or 32 bytes) loaded and
    /// ready.
    ///
    /// The paper's IP cores are AES-128-only hardware: when an ip-core
    /// spec is asked for a 24/32-byte key, the slot falls back to the
    /// software reference under the name `soft-fallback` — visibly, in
    /// telemetry and `GET_STATS`, rather than by truncating the key or
    /// wedging the farm. Every software spec serves all three sizes.
    ///
    /// # Panics
    ///
    /// Panics when `self` is not [`BackendSpec::available`] on this host
    /// (configuring a backend the hardware cannot run must fail loudly,
    /// never silently substitute another implementation), and on an
    /// invalid key length.
    #[must_use]
    pub fn build(self, key: &[u8]) -> Box<dyn Backend> {
        match self {
            BackendSpec::EncryptCore | BackendSpec::DecryptCore | BackendSpec::EncDecCore => {
                // The AES-128-only hardware model; longer keys divert to
                // the clearly-labeled software stand-in.
                let Ok(k16) = <&[u8; 16]>::try_from(key) else {
                    return Box::new(SoftwareBackend::new(
                        Rijndael::<4>::new(key).expect("key must be 16, 24, or 32 bytes"),
                        "soft-fallback",
                    ));
                };
                match self {
                    BackendSpec::EncryptCore => {
                        Box::new(IpCoreBackend::new(EncryptCore::new(), k16, "ip-encrypt"))
                    }
                    BackendSpec::DecryptCore => {
                        Box::new(IpCoreBackend::new(DecryptCore::new(), k16, "ip-decrypt"))
                    }
                    _ => Box::new(IpCoreBackend::new(EncDecCore::new(), k16, "ip-encdec")),
                }
            }
            BackendSpec::Software => Box::new(SoftwareBackend::new(
                Rijndael::<4>::new(key).expect("key must be 16, 24, or 32 bytes"),
                "soft-ref",
            )),
            BackendSpec::Ttable => Box::new(SoftwareBackend::new(
                TtableAes::new(key).expect("key must be 16, 24, or 32 bytes"),
                "soft-ttable",
            )),
            BackendSpec::Bitsliced => Box::new(BitslicedBackend::new(key)),
            BackendSpec::AesNi => {
                let kind = if Kind::AesNi.available() {
                    Kind::AesNi
                } else {
                    Kind::Neon
                };
                // `for_kind` asserts availability, satisfying the
                // fail-loudly contract when neither instruction set is
                // present.
                Box::new(DispatchBackend::new(
                    AutoCipher::for_kind(kind, key).expect("hardware AES kinds build a cipher"),
                ))
            }
            BackendSpec::Auto => match dispatch::selection().bulk {
                // A forced ip-core selection has no software cipher; the
                // combined-core hardware model fills the slot. The model
                // is AES-128-only, so longer keys take the same software
                // diversion as the explicit ip-core specs.
                Kind::IpCore => match <&[u8; 16]>::try_from(key) {
                    Ok(k16) => Box::new(IpCoreBackend::new(EncDecCore::new(), k16, "ip-encdec")),
                    Err(_) => Box::new(SoftwareBackend::new(
                        Rijndael::<4>::new(key).expect("key must be 16, 24, or 32 bytes"),
                        "soft-fallback",
                    )),
                },
                kind => Box::new(DispatchBackend::new(
                    AutoCipher::for_kind(kind, key).expect("non-ip-core selections build a cipher"),
                )),
            },
            BackendSpec::Paced { block_ns } => Box::new(PacedBackend::new(
                BackendSpec::Ttable.build(key),
                Duration::from_nanos(u64::from(block_ns)),
            )),
        }
    }
}

impl fmt::Display for BackendSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            BackendSpec::EncryptCore => "ip-encrypt",
            BackendSpec::DecryptCore => "ip-decrypt",
            BackendSpec::EncDecCore => "ip-encdec",
            BackendSpec::Software => "soft-ref",
            BackendSpec::Ttable => "soft-ttable",
            BackendSpec::Bitsliced => "soft-bitsliced",
            BackendSpec::AesNi => "soft-aesni",
            BackendSpec::Auto => "auto",
            BackendSpec::Paced { .. } => "paced",
        };
        f.write_str(s)
    }
}

/// Failure of one backend operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BackendError {
    /// The backend has no datapath for the requested direction.
    Unsupported {
        /// Name of the rejecting backend.
        backend: &'static str,
        /// The direction it cannot process.
        dir: Direction,
    },
    /// The bus driver reported a streaming fault (wedge, mid-stream key
    /// change, busy core).
    Bus(StreamError),
}

impl fmt::Display for BackendError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BackendError::Unsupported { backend, dir } => {
                let verb = match dir {
                    Direction::Encrypt => "encrypt",
                    Direction::Decrypt => "decrypt",
                };
                write!(f, "backend {backend} cannot {verb}")
            }
            BackendError::Bus(e) => write!(f, "bus fault: {e}"),
        }
    }
}

impl std::error::Error for BackendError {}

impl From<StreamError> for BackendError {
    fn from(e: StreamError) -> Self {
        BackendError::Bus(e)
    }
}

/// One farm member: a block processor with a virtual-time cost model.
///
/// The trait is object-safe; the scheduler holds `Box<dyn Backend>`.
/// `Send` is a supertrait so a whole [`Engine`](crate::Engine) can move
/// into a worker thread — the TCP service crate builds one engine per
/// connection handler this way.
pub trait Backend: Send {
    /// Short stable name for metrics and reports.
    fn name(&self) -> &'static str;

    /// `true` when the backend can process blocks in `dir`.
    fn supports(&self, dir: Direction) -> bool;

    /// Processes one block in place, blocking until done (chained modes
    /// feed blocks one at a time through this).
    ///
    /// # Errors
    ///
    /// [`BackendError::Unsupported`] for a direction the backend lacks;
    /// [`BackendError::Bus`] for hardware streaming faults.
    fn process_block(&mut self, block: &mut [u8; 16], dir: Direction) -> Result<(), BackendError>;

    /// Processes a batch of independent blocks in place. Hardware
    /// backends pipeline the batch through the decoupled `Data_In`/`Out`
    /// bus so steady-state cost approaches [`LATENCY_CYCLES`] per block.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Backend::process_block`].
    fn process_stream(
        &mut self,
        blocks: &mut [[u8; 16]],
        dir: Direction,
    ) -> Result<(), BackendError>;

    /// Processes a batch of independent blocks in place through the
    /// backend's widest datapath. The default walks the batch one
    /// [`Backend::process_block`] at a time; backends with a genuinely
    /// wider path override it — the IP cores pipeline the batch across
    /// the decoupled bus, and the bitsliced backend runs whole
    /// multi-block passes. The scheduler's sharded ECB/CTR paths submit
    /// through this method, sized in multiples of 8 blocks so bitsliced
    /// granules stay full.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Backend::process_block`].
    fn process_batch(
        &mut self,
        blocks: &mut [[u8; 16]],
        dir: Direction,
    ) -> Result<(), BackendError> {
        for block in blocks.iter_mut() {
            self.process_block(block, dir)?;
        }
        Ok(())
    }

    /// Blocks processed so far.
    fn blocks(&self) -> u64;

    /// Total virtual clock cycles consumed, key setup included.
    fn cycles(&self) -> u64;

    /// Cycles spent on one-time key setup (excluded from occupancy).
    fn setup_cycles(&self) -> u64;

    /// Cycles the datapath spent computing blocks — the occupancy
    /// numerator ([`LATENCY_CYCLES`] × blocks on hardware).
    fn busy_cycles(&self) -> u64;
}

/// A cycle-accurate IP core behind its bus driver, exposed as a
/// [`Backend`].
#[derive(Debug, Clone)]
pub struct IpCoreBackend<C: CycleCore> {
    driver: IpDriver<C>,
    name: &'static str,
    setup_cycles: u64,
    blocks: u64,
}

impl<C: CycleCore> IpCoreBackend<C> {
    /// Wraps `core`, loads `key` (paying the real key-setup cycles), and
    /// labels the backend `name` for reports.
    #[must_use]
    pub fn new(core: C, key: &[u8; 16], name: &'static str) -> Self {
        let mut driver = IpDriver::new(core);
        driver.write_key(key);
        let setup_cycles = driver.cycles();
        IpCoreBackend {
            driver,
            name,
            setup_cycles,
            blocks: 0,
        }
    }

    /// The wrapped bus driver (cycle counter included).
    #[must_use]
    pub fn driver(&self) -> &IpDriver<C> {
        &self.driver
    }
}

impl<C: CycleCore> Drop for IpCoreBackend<C> {
    /// Best-effort key hygiene, mirroring the software ciphers' on-drop
    /// wipe: reload an all-zero key so neither the modeled key register
    /// nor the walked decrypt schedule still holds the session key.
    fn drop(&mut self) {
        self.driver.write_key(&[0u8; 16]);
    }
}

impl<C: CycleCore + Send> Backend for IpCoreBackend<C> {
    fn name(&self) -> &'static str {
        self.name
    }

    fn supports(&self, dir: Direction) -> bool {
        let v = self.driver.core().variant();
        match dir {
            Direction::Encrypt => v.supports_encrypt(),
            Direction::Decrypt => v.supports_decrypt(),
        }
    }

    fn process_block(&mut self, block: &mut [u8; 16], dir: Direction) -> Result<(), BackendError> {
        *block = self.driver.try_process_block(block, dir)?;
        self.blocks += 1;
        Ok(())
    }

    fn process_stream(
        &mut self,
        blocks: &mut [[u8; 16]],
        dir: Direction,
    ) -> Result<(), BackendError> {
        let results = self.driver.try_process_stream(blocks, dir)?;
        for (b, r) in blocks.iter_mut().zip(results) {
            *b = r;
        }
        self.blocks += blocks.len() as u64;
        Ok(())
    }

    fn process_batch(
        &mut self,
        blocks: &mut [[u8; 16]],
        dir: Direction,
    ) -> Result<(), BackendError> {
        // The bus pipeline is the hardware's widest path.
        self.process_stream(blocks, dir)
    }

    fn blocks(&self) -> u64 {
        self.blocks
    }

    fn cycles(&self) -> u64 {
        self.driver.cycles()
    }

    fn setup_cycles(&self) -> u64 {
        self.setup_cycles
    }

    fn busy_cycles(&self) -> u64 {
        LATENCY_CYCLES * self.blocks
    }
}

/// A software cipher as a [`Backend`]: no clock, so virtual time is a
/// nominal one cycle per block (occupancy is by definition 100%).
///
/// Key hygiene rides on the wrapped cipher: [`Aes128`] and [`TtableAes`]
/// wipe their expanded schedules when the backend is dropped (see
/// `rijndael::zeroize`).
#[derive(Debug, Clone)]
pub struct SoftwareBackend<B> {
    cipher: B,
    name: &'static str,
    blocks: u64,
}

impl<B: BlockCipher> SoftwareBackend<B> {
    /// Wraps a 16-byte-block cipher as a farm member labeled `name`.
    ///
    /// # Panics
    ///
    /// Panics if the cipher's block length is not 16 bytes.
    #[must_use]
    pub fn new(cipher: B, name: &'static str) -> Self {
        assert_eq!(cipher.block_len(), 16, "the engine schedules AES blocks");
        SoftwareBackend {
            cipher,
            name,
            blocks: 0,
        }
    }
}

impl<B: BlockCipher + Send> Backend for SoftwareBackend<B> {
    fn name(&self) -> &'static str {
        self.name
    }

    fn supports(&self, _dir: Direction) -> bool {
        true
    }

    fn process_block(&mut self, block: &mut [u8; 16], dir: Direction) -> Result<(), BackendError> {
        match dir {
            Direction::Encrypt => self.cipher.encrypt_in_place(block),
            Direction::Decrypt => self.cipher.decrypt_in_place(block),
        }
        self.blocks += 1;
        Ok(())
    }

    fn process_stream(
        &mut self,
        blocks: &mut [[u8; 16]],
        dir: Direction,
    ) -> Result<(), BackendError> {
        for block in blocks.iter_mut() {
            match dir {
                Direction::Encrypt => self.cipher.encrypt_in_place(block),
                Direction::Decrypt => self.cipher.decrypt_in_place(block),
            }
        }
        self.blocks += blocks.len() as u64;
        Ok(())
    }

    fn blocks(&self) -> u64 {
        self.blocks
    }

    fn cycles(&self) -> u64 {
        self.blocks
    }

    fn setup_cycles(&self) -> u64 {
        0
    }

    fn busy_cycles(&self) -> u64 {
        self.blocks
    }
}

/// The bitsliced software cipher as a [`Backend`] with a real batch path.
///
/// Single blocks (chained modes) go through a padded 8-block granule —
/// correct but slow, which is exactly the backend's contract: it earns
/// its keep on [`Backend::process_batch`], where whole 64-block passes
/// make it the fastest software farm member on bulk ECB/CTR work. Cost
/// model matches [`SoftwareBackend`]: a nominal cycle per block.
#[derive(Debug, Clone)]
pub struct BitslicedBackend {
    cipher: Bitsliced8,
    blocks: u64,
}

impl BitslicedBackend {
    /// Builds the backend with `key` expanded and broadcast.
    ///
    /// # Panics
    ///
    /// Panics if `key.len()` is not 16, 24 or 32 bytes.
    #[must_use]
    pub fn new(key: &[u8]) -> Self {
        BitslicedBackend {
            cipher: Bitsliced8::new(key),
            blocks: 0,
        }
    }
}

impl Backend for BitslicedBackend {
    fn name(&self) -> &'static str {
        "soft-bitsliced"
    }

    fn supports(&self, _dir: Direction) -> bool {
        true
    }

    fn process_block(&mut self, block: &mut [u8; 16], dir: Direction) -> Result<(), BackendError> {
        match dir {
            Direction::Encrypt => self.cipher.encrypt_in_place(block),
            Direction::Decrypt => self.cipher.decrypt_in_place(block),
        }
        self.blocks += 1;
        Ok(())
    }

    fn process_stream(
        &mut self,
        blocks: &mut [[u8; 16]],
        dir: Direction,
    ) -> Result<(), BackendError> {
        self.process_batch(blocks, dir)
    }

    fn process_batch(
        &mut self,
        blocks: &mut [[u8; 16]],
        dir: Direction,
    ) -> Result<(), BackendError> {
        match dir {
            Direction::Encrypt => self.cipher.encrypt_blocks(blocks),
            Direction::Decrypt => self.cipher.decrypt_blocks(blocks),
        }
        self.blocks += blocks.len() as u64;
        Ok(())
    }

    fn blocks(&self) -> u64 {
        self.blocks
    }

    fn cycles(&self) -> u64 {
        self.blocks
    }

    fn setup_cycles(&self) -> u64 {
        0
    }

    fn busy_cycles(&self) -> u64 {
        self.blocks
    }
}

/// The runtime-dispatched cipher ([`AutoCipher`]) as a [`Backend`].
///
/// This is what a [`BackendSpec::Auto`] farm slot holds: the micro-race
/// (or `RIJNDAEL_FORCE_BACKEND`) decides the implementation once per
/// process, and [`Backend::name`] reports the *resolved* backend
/// (`soft-aesni`, `soft-bitsliced-wide`, ...) so `GET_STATS` and the
/// `engine.core.<i>.<backend>.*` telemetry show which path actually ran.
/// Cost model matches the other software backends: a nominal cycle per
/// block.
#[derive(Debug, Clone)]
pub struct DispatchBackend {
    cipher: AutoCipher,
    blocks: u64,
}

impl DispatchBackend {
    /// Wraps an already-dispatched cipher as a farm member.
    #[must_use]
    pub fn new(cipher: AutoCipher) -> Self {
        DispatchBackend { cipher, blocks: 0 }
    }

    /// Which dispatch [`Kind`] the wrapped cipher runs.
    #[must_use]
    pub fn kind(&self) -> Kind {
        self.cipher.kind()
    }
}

impl Backend for DispatchBackend {
    fn name(&self) -> &'static str {
        self.cipher.backend_name()
    }

    fn supports(&self, _dir: Direction) -> bool {
        true
    }

    fn process_block(&mut self, block: &mut [u8; 16], dir: Direction) -> Result<(), BackendError> {
        match dir {
            Direction::Encrypt => self.cipher.encrypt_in_place(block),
            Direction::Decrypt => self.cipher.decrypt_in_place(block),
        }
        self.blocks += 1;
        Ok(())
    }

    fn process_stream(
        &mut self,
        blocks: &mut [[u8; 16]],
        dir: Direction,
    ) -> Result<(), BackendError> {
        self.process_batch(blocks, dir)
    }

    fn process_batch(
        &mut self,
        blocks: &mut [[u8; 16]],
        dir: Direction,
    ) -> Result<(), BackendError> {
        use rijndael::BatchCipher;
        match dir {
            Direction::Encrypt => self.cipher.encrypt_blocks(blocks),
            Direction::Decrypt => self.cipher.decrypt_blocks(blocks),
        }
        self.blocks += blocks.len() as u64;
        Ok(())
    }

    fn blocks(&self) -> u64 {
        self.blocks
    }

    fn cycles(&self) -> u64 {
        self.blocks
    }

    fn setup_cycles(&self) -> u64 {
        0
    }

    fn busy_cycles(&self) -> u64 {
        self.blocks
    }
}

/// A wrapper that converts a backend's *virtual* block cost into real
/// wall-clock time by sleeping after each processing call.
///
/// The paper's deployment runs independent hardware cores: host threads
/// only drive the bus, and `k` cores genuinely overlap regardless of how
/// many CPUs the host has. A software farm benched on a small host can't
/// show that overlap — every backend is CPU-bound, so threads serialize
/// on the cores available. `PacedBackend` restores the hardware shape:
/// the wrapped backend computes the bytes (correctness is real), then the
/// wrapper sleeps `blocks × block_time`, modelling a core whose datapath
/// time dominates and is *independent of the host CPU*. Sleeps in
/// different worker threads overlap even on a single-CPU host, so
/// wall-clock scaling measurements against paced farms are honest and
/// host-independent.
///
/// Used by `bench/bin/elastic_scaling` for the 1→4 worker scaling gate;
/// not part of the service data path.
pub struct PacedBackend {
    inner: Box<dyn Backend>,
    block_time: Duration,
    paced_blocks: u64,
}

impl PacedBackend {
    /// Wraps `inner`, sleeping `block_time` per block processed.
    #[must_use]
    pub fn new(inner: Box<dyn Backend>, block_time: Duration) -> Self {
        let paced_blocks = inner.blocks();
        PacedBackend {
            inner,
            block_time,
            paced_blocks,
        }
    }

    fn pace(&mut self) {
        let now = self.inner.blocks();
        let delta = now.saturating_sub(self.paced_blocks);
        self.paced_blocks = now;
        if delta > 0 {
            std::thread::sleep(
                self.block_time
                    .saturating_mul(delta.try_into().unwrap_or(u32::MAX)),
            );
        }
    }
}

impl Backend for PacedBackend {
    fn name(&self) -> &'static str {
        self.inner.name()
    }

    fn supports(&self, dir: Direction) -> bool {
        self.inner.supports(dir)
    }

    fn process_block(&mut self, block: &mut [u8; 16], dir: Direction) -> Result<(), BackendError> {
        let r = self.inner.process_block(block, dir);
        self.pace();
        r
    }

    fn process_stream(
        &mut self,
        blocks: &mut [[u8; 16]],
        dir: Direction,
    ) -> Result<(), BackendError> {
        let r = self.inner.process_stream(blocks, dir);
        self.pace();
        r
    }

    fn process_batch(
        &mut self,
        blocks: &mut [[u8; 16]],
        dir: Direction,
    ) -> Result<(), BackendError> {
        let r = self.inner.process_batch(blocks, dir);
        self.pace();
        r
    }

    fn blocks(&self) -> u64 {
        self.inner.blocks()
    }

    fn cycles(&self) -> u64 {
        self.inner.cycles()
    }

    fn setup_cycles(&self) -> u64 {
        self.inner.setup_cycles()
    }

    fn busy_cycles(&self) -> u64 {
        self.inner.busy_cycles()
    }
}

impl fmt::Debug for PacedBackend {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("PacedBackend")
            .field("inner", &self.inner.name())
            .field("block_time", &self.block_time)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rijndael::vectors::FIPS197_C1;

    fn fips_key() -> [u8; 16] {
        let mut k = [0u8; 16];
        k.copy_from_slice(FIPS197_C1.key);
        k
    }

    #[test]
    fn every_spec_builds_and_encrypts_or_declines() {
        let key = fips_key();
        for spec in BackendSpec::ALL {
            let mut backend = spec.build(&key);
            assert_eq!(backend.name(), spec.to_string());
            if backend.supports(Direction::Encrypt) {
                let mut block = FIPS197_C1.plaintext;
                backend
                    .process_block(&mut block, Direction::Encrypt)
                    .unwrap();
                assert_eq!(block, FIPS197_C1.ciphertext, "{spec}");
                assert_eq!(backend.blocks(), 1);
            } else {
                let mut block = FIPS197_C1.plaintext;
                let err = backend
                    .process_block(&mut block, Direction::Encrypt)
                    .unwrap_err();
                assert!(err.to_string().contains("cannot encrypt"), "{spec}: {err}");
            }
        }
    }

    #[test]
    fn long_keys_divert_ip_cores_to_the_software_fallback() {
        use rijndael::vectors::FIPS197_C3;
        for spec in BackendSpec::ALL {
            let mut backend = spec.build(FIPS197_C3.key);
            let hardware = matches!(
                spec,
                BackendSpec::EncryptCore | BackendSpec::DecryptCore | BackendSpec::EncDecCore
            );
            if hardware {
                // The modeled IP core is AES-128-only; the diversion must
                // be visible in the backend name, not silent.
                assert_eq!(backend.name(), "soft-fallback", "{spec}");
            }
            if backend.supports(Direction::Encrypt) {
                let mut block = FIPS197_C3.plaintext;
                backend
                    .process_block(&mut block, Direction::Encrypt)
                    .unwrap();
                assert_eq!(block, FIPS197_C3.ciphertext, "{spec}");
            }
        }
    }

    #[test]
    fn hardware_stream_costs_latency_per_block() {
        let mut backend = IpCoreBackend::new(EncryptCore::new(), &fips_key(), "ip-encrypt");
        let before = backend.cycles();
        let mut blocks = [[0u8; 16]; 4];
        backend
            .process_stream(&mut blocks, Direction::Encrypt)
            .unwrap();
        let spent = backend.cycles() - before;
        // One load edge then one block per latency period.
        assert_eq!(spent, 1 + 4 * LATENCY_CYCLES);
        assert_eq!(backend.busy_cycles(), 4 * LATENCY_CYCLES);
        assert_eq!(backend.setup_cycles(), 1); // encrypt-only: key edge only
    }

    #[test]
    fn decrypt_only_backend_reports_unsupported_encrypt() {
        let mut backend = BackendSpec::DecryptCore.build(&fips_key());
        assert!(!backend.supports(Direction::Encrypt));
        let mut blocks = [[0u8; 16]; 2];
        let err = backend
            .process_stream(&mut blocks, Direction::Encrypt)
            .unwrap_err();
        assert!(matches!(err, BackendError::Bus(_)), "{err:?}");
    }

    #[test]
    fn software_backends_agree_with_each_other() {
        let key = fips_key();
        let mut soft = BackendSpec::Software.build(&key);
        let mut ttable = BackendSpec::Ttable.build(&key);
        let mut a = [[7u8; 16]; 3];
        let mut b = a;
        soft.process_stream(&mut a, Direction::Encrypt).unwrap();
        ttable.process_stream(&mut b, Direction::Encrypt).unwrap();
        assert_eq!(a, b);
        assert_eq!(soft.cycles(), 3); // one nominal cycle per block
        assert_eq!(soft.busy_cycles(), 3);
    }

    #[test]
    fn every_backend_rekeys_cleanly_after_drop() {
        // The on-drop wipe (zero-key reload on hardware, schedule wipe in
        // software) must leave nothing behind that corrupts a fresh
        // backend built from the same key bytes.
        let key = fips_key();
        for spec in BackendSpec::ALL {
            drop(spec.build(&key));
            let mut fresh = spec.build(&key);
            if !fresh.supports(Direction::Encrypt) {
                continue;
            }
            let mut block = FIPS197_C1.plaintext;
            fresh.process_block(&mut block, Direction::Encrypt).unwrap();
            assert_eq!(block, FIPS197_C1.ciphertext, "{spec} after re-key");
        }
    }

    #[test]
    fn process_batch_matches_process_block_for_every_spec() {
        let key = fips_key();
        for spec in BackendSpec::ALL {
            for dir in [Direction::Encrypt, Direction::Decrypt] {
                let mut batch_backend = spec.build(&key);
                if !batch_backend.supports(dir) {
                    continue;
                }
                let blocks: Vec<[u8; 16]> =
                    (0..23u8).map(|i| [i.wrapping_mul(11) ^ 0x3C; 16]).collect();
                let mut via_batch = blocks.clone();
                batch_backend.process_batch(&mut via_batch, dir).unwrap();
                assert_eq!(batch_backend.blocks(), 23, "{spec} {dir:?}");

                let mut block_backend = spec.build(&key);
                let mut via_block = blocks;
                for b in &mut via_block {
                    block_backend.process_block(b, dir).unwrap();
                }
                assert_eq!(via_batch, via_block, "{spec} {dir:?}");
            }
        }
    }

    #[test]
    fn bitsliced_backend_agrees_with_the_reference_on_a_wide_batch() {
        let key = fips_key();
        let mut sliced = BackendSpec::Bitsliced.build(&key);
        let mut reference = BackendSpec::Software.build(&key);
        let blocks: Vec<[u8; 16]> = (0..100u8).map(|i| [i ^ 0xA7; 16]).collect();
        let mut a = blocks.clone();
        let mut b = blocks;
        sliced.process_batch(&mut a, Direction::Encrypt).unwrap();
        reference.process_batch(&mut b, Direction::Encrypt).unwrap();
        assert_eq!(a, b);
        assert_eq!(sliced.cycles(), 100); // nominal software cost model
        assert_eq!(sliced.busy_cycles(), 100);
        assert_eq!(sliced.setup_cycles(), 0);
    }

    #[test]
    fn backends_are_send() {
        fn assert_send<T: Send>(_: T) {}
        for spec in BackendSpec::ALL {
            assert_send(spec.build(&fips_key()));
        }
    }

    #[test]
    fn detected_specs_build_and_match_the_reference() {
        let key = fips_key();
        let blocks: Vec<[u8; 16]> = (0..23u8).map(|i| [i.wrapping_mul(7) ^ 0x55; 16]).collect();
        let mut expected = blocks.clone();
        BackendSpec::Software
            .build(&key)
            .process_batch(&mut expected, Direction::Encrypt)
            .unwrap();
        for spec in BackendSpec::detected() {
            assert!(spec.available(), "{spec}");
            let mut backend = spec.build(&key);
            if !backend.supports(Direction::Encrypt) {
                continue;
            }
            let mut got = blocks.clone();
            backend.process_batch(&mut got, Direction::Encrypt).unwrap();
            assert_eq!(got, expected, "{spec}");
        }
    }

    #[test]
    fn auto_backend_reports_the_resolved_name_and_encrypts() {
        let key = fips_key();
        let mut auto = BackendSpec::Auto.build(&key);
        // Auto never reports the placeholder "auto": the name is the
        // resolved selection, visible downstream in GET_STATS.
        assert_ne!(auto.name(), "auto");
        let resolved = rijndael::dispatch::selection().bulk;
        assert_eq!(auto.name(), resolved.backend_name());
        let mut block = FIPS197_C1.plaintext;
        auto.process_block(&mut block, Direction::Encrypt).unwrap();
        assert_eq!(block, FIPS197_C1.ciphertext);
        assert_eq!(auto.cycles(), 1);
    }

    #[test]
    fn hardware_aes_spec_is_gated_by_the_probe() {
        if !BackendSpec::AesNi.available() {
            assert!(!BackendSpec::detected().contains(&BackendSpec::AesNi));
            return;
        }
        let key = fips_key();
        let mut hw = BackendSpec::AesNi.build(&key);
        let mut block = FIPS197_C1.plaintext;
        hw.process_block(&mut block, Direction::Encrypt).unwrap();
        assert_eq!(block, FIPS197_C1.ciphertext);
        hw.process_block(&mut block, Direction::Decrypt).unwrap();
        assert_eq!(block, FIPS197_C1.plaintext);
        assert!(hw.name().starts_with("soft-"), "{}", hw.name());
    }

    #[test]
    fn backend_error_formats() {
        let e = BackendError::Unsupported {
            backend: "ip-decrypt",
            dir: Direction::Encrypt,
        };
        assert!(e.to_string().contains("ip-decrypt cannot encrypt"));
        let bus: BackendError = StreamError::CoreBusy.into();
        assert!(bus.to_string().contains("busy"));
    }
}

//! The alternative datapath architectures the paper discusses.
//!
//! §4 motivates the mixed 32/128-bit datapath by comparing against a pure
//! 32-bit datapath ("from 12 [cycles per round] … to 5"), §6 argues that
//! larger architectures are key-schedule-limited and smaller (8/16-bit)
//! ones lose on cycle count without winning clock speed, and Table 3
//! compares against published low-cost (8-bit-style) and high-performance
//! (fully parallel) cores. This module provides cycle-accurate
//! encrypt-side models for that design-space sweep.

use core::fmt;

use crate::core::{CoreInputs, CoreOutputs, CoreVariant, CycleCore, ROUNDS};
use crate::datapath as dp;

/// The datapath design points of the paper's architecture discussion.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AltArch {
    /// Everything processed 32 bits at a time: 12 cycles per round
    /// (4 `ByteSub` + 4 `ShiftRow` + 4 `MixColumn`+`AddKey` slices) — the
    /// paper's explicit baseline.
    All32,
    /// The paper's architecture: `ByteSub` at 32 bits, the rest at 128 —
    /// 5 cycles per round.
    Mixed32x128,
    /// Fully parallel 128-bit datapath (16 S-boxes): 1 cycle per round —
    /// the high-performance comparison point (\[1\] in the paper).
    Full128,
    /// An 8-bit serial datapath in the spirit of the low-cost cores of
    /// Table 3 (\[14\]): 24 cycles per round (16 byte-wide `ByteSub` +
    /// 4 row-serial `ShiftRow` + 4 column-serial `MixColumn`/`AddKey`
    /// steps).
    Serial8,
}

impl AltArch {
    /// All design points, smallest datapath first.
    pub const ALL: [AltArch; 4] = [
        AltArch::Serial8,
        AltArch::All32,
        AltArch::Mixed32x128,
        AltArch::Full128,
    ];

    /// Clock cycles one round occupies.
    #[must_use]
    pub const fn cycles_per_round(self) -> u64 {
        match self {
            AltArch::Serial8 => 24,
            AltArch::All32 => 12,
            AltArch::Mixed32x128 => 5,
            AltArch::Full128 => 1,
        }
    }

    /// Block latency in clock cycles (10 rounds).
    #[must_use]
    pub const fn latency_cycles(self) -> u64 {
        self.cycles_per_round() * ROUNDS
    }

    /// S-box ROM instances on the encrypt path (datapath + `KStran`).
    #[must_use]
    pub const fn sbox_count(self) -> usize {
        match self {
            // 1 datapath S-box; the key schedule reuses it over extra
            // cycles in low-cost designs, plus 1 dedicated.
            AltArch::Serial8 => 2,
            // 4 datapath + 4 KStran.
            AltArch::All32 | AltArch::Mixed32x128 => 8,
            // 16 datapath + 4 KStran.
            AltArch::Full128 => 20,
        }
    }

    /// Width of the `ByteSub` slice in bits.
    #[must_use]
    pub const fn sub_width(self) -> u32 {
        match self {
            AltArch::Serial8 => 8,
            AltArch::All32 | AltArch::Mixed32x128 => 32,
            AltArch::Full128 => 128,
        }
    }

    /// Width of the linear (`ShiftRow`/`MixColumn`/`AddKey`) stage in bits.
    #[must_use]
    pub const fn linear_width(self) -> u32 {
        match self {
            AltArch::Serial8 => 8,
            AltArch::All32 => 32,
            AltArch::Mixed32x128 | AltArch::Full128 => 128,
        }
    }

    /// Report name.
    #[must_use]
    pub const fn name(self) -> &'static str {
        match self {
            AltArch::Serial8 => "serial-8",
            AltArch::All32 => "all-32",
            AltArch::Mixed32x128 => "mixed-32/128 (this paper)",
            AltArch::Full128 => "full-128",
        }
    }
}

impl fmt::Display for AltArch {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum AltFsm {
    Idle,
    Running { round: u8, cycle: u64 },
}

/// A cycle-accurate encrypt core for any [`AltArch`] design point.
///
/// Functionally identical to [`crate::core::EncryptCore`] (it is checked
/// against the same vectors); only the cycle schedule differs.
///
/// # Examples
///
/// ```
/// use aes_ip::alt::{AltArch, AltEncryptCore};
/// use aes_ip::core::{CoreInputs, CycleCore};
///
/// let mut core = AltEncryptCore::new(AltArch::Full128);
/// core.rising_edge(&CoreInputs { setup: true, wr_key: true, din: 0, ..Default::default() });
/// core.rising_edge(&CoreInputs { wr_data: true, din: 0, ..Default::default() });
/// let mut out = Default::default();
/// for _ in 0..core.latency_cycles() {
///     out = core.rising_edge(&CoreInputs::default());
/// }
/// assert!(out.data_ok);
/// ```
#[derive(Debug, Clone)]
pub struct AltEncryptCore {
    arch: AltArch,
    key0: u128,
    round_key: u128,
    state: u128,
    data_in: u128,
    data_in_valid: bool,
    dout: u128,
    data_ok: bool,
    results: u64,
    fsm: AltFsm,
}

impl AltEncryptCore {
    /// Creates a core for the given design point with cleared registers.
    #[must_use]
    pub fn new(arch: AltArch) -> Self {
        AltEncryptCore {
            arch,
            key0: 0,
            round_key: 0,
            state: 0,
            data_in: 0,
            data_in_valid: false,
            dout: 0,
            data_ok: false,
            results: 0,
            fsm: AltFsm::Idle,
        }
    }

    /// The design point this core models.
    #[must_use]
    pub fn arch(&self) -> AltArch {
        self.arch
    }

    fn consume(&mut self) {
        self.state = dp::add_key(self.data_in, self.key0);
        self.round_key = self.key0;
        self.data_in_valid = false;
        self.fsm = AltFsm::Running { round: 1, cycle: 1 };
    }

    /// Applies the complete round transformation. The narrow datapaths
    /// spread this work over their cycle budget; the model performs it on
    /// the round's final cycle, which is externally indistinguishable
    /// (intermediate slices never reach a pin).
    fn finish_round(&mut self, round: u8) {
        let mut s = self.state;
        for c in 0..4 {
            s = dp::with_column(s, c, dp::byte_sub_word(dp::column(s, c)));
        }
        s = dp::shift_rows(s);
        if u64::from(round) < ROUNDS {
            s = dp::mix_columns(s);
        }
        self.round_key = dp::next_round_key(self.round_key, usize::from(round));
        s = dp::add_key(s, self.round_key);
        self.state = s;
        if u64::from(round) == ROUNDS {
            self.dout = s;
            self.data_ok = true;
            self.results += 1;
        }
    }
}

impl CycleCore for AltEncryptCore {
    fn rising_edge(&mut self, inputs: &CoreInputs) -> CoreOutputs {
        if inputs.setup {
            if inputs.wr_key {
                self.key0 = inputs.din;
                self.fsm = AltFsm::Idle;
                self.data_in_valid = false;
                self.data_ok = false;
            }
            return CoreOutputs {
                data_ok: self.data_ok,
                dout: self.dout,
            };
        }
        if inputs.wr_data {
            self.data_in = inputs.din;
            self.data_in_valid = true;
        }
        match self.fsm {
            AltFsm::Idle => {
                if self.data_in_valid {
                    self.consume();
                }
            }
            AltFsm::Running { round, cycle } => {
                let per_round = self.arch.cycles_per_round();
                if cycle == per_round {
                    self.finish_round(round);
                    if u64::from(round) < ROUNDS {
                        self.fsm = AltFsm::Running {
                            round: round + 1,
                            cycle: 1,
                        };
                    } else {
                        self.fsm = AltFsm::Idle;
                        if self.data_in_valid {
                            self.consume();
                        }
                    }
                } else {
                    self.fsm = AltFsm::Running {
                        round,
                        cycle: cycle + 1,
                    };
                }
            }
        }
        CoreOutputs {
            data_ok: self.data_ok,
            dout: self.dout,
        }
    }

    fn variant(&self) -> CoreVariant {
        CoreVariant::Encrypt
    }

    fn latency_cycles(&self) -> u64 {
        self.arch.latency_cycles()
    }

    fn key_setup_cycles(&self) -> u64 {
        0
    }

    fn busy(&self) -> bool {
        !matches!(self.fsm, AltFsm::Idle)
    }

    fn results_count(&self) -> u64 {
        self.results
    }

    fn has_pending(&self) -> bool {
        self.data_in_valid
    }

    fn name(&self) -> &'static str {
        self.arch.name()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bus::IpDriver;
    use crate::core::Direction;
    use rijndael::vectors::AES128_VECTORS;

    #[test]
    fn every_design_point_passes_the_vectors() {
        for arch in AltArch::ALL {
            for v in AES128_VECTORS {
                let mut key = [0u8; 16];
                key.copy_from_slice(v.key);
                let mut drv = IpDriver::new(AltEncryptCore::new(arch));
                drv.write_key(&key);
                let start = drv.cycles();
                let ct = drv
                    .try_process_block(&v.plaintext, Direction::Encrypt)
                    .unwrap();
                assert_eq!(ct, v.ciphertext, "{arch}: {}", v.source);
                // Load edge + the architecture's processing latency.
                assert_eq!(
                    drv.cycles() - start,
                    1 + arch.latency_cycles(),
                    "{arch}: latency"
                );
            }
        }
    }

    #[test]
    fn cycle_budgets_match_the_paper() {
        assert_eq!(AltArch::All32.cycles_per_round(), 12); // paper §4
        assert_eq!(AltArch::Mixed32x128.cycles_per_round(), 5); // paper §4
        assert_eq!(AltArch::Mixed32x128.latency_cycles(), 50);
        assert_eq!(AltArch::Full128.latency_cycles(), 10);
        // Monotone: wider datapath, fewer cycles.
        let cycles: Vec<u64> = AltArch::ALL.iter().map(|a| a.latency_cycles()).collect();
        assert!(cycles.windows(2).all(|w| w[0] > w[1]));
    }

    #[test]
    fn sbox_memory_scales_with_width() {
        let roms: Vec<usize> = AltArch::ALL.iter().map(|a| a.sbox_count()).collect();
        assert!(roms.windows(2).all(|w| w[0] <= w[1]));
        assert_eq!(
            AltArch::Mixed32x128.sbox_count() * gf256::sbox::SBOX_ROM_BITS,
            16384
        );
    }

    #[test]
    fn pipelined_stream_at_each_design_point() {
        let blocks: Vec<[u8; 16]> = (0..4u8).map(|i| [i.wrapping_mul(17); 16]).collect();
        let aes = rijndael::Aes128::new(&[3u8; 16]);
        for arch in AltArch::ALL {
            let mut drv = IpDriver::new(AltEncryptCore::new(arch));
            drv.write_key(&[3u8; 16]);
            let start = drv.cycles();
            let cts = drv.try_process_stream(&blocks, Direction::Encrypt).unwrap();
            for (b, ct) in blocks.iter().zip(&cts) {
                assert_eq!(*ct, aes.encrypt_block(b), "{arch}");
            }
            let spent = drv.cycles() - start;
            assert!(
                spent <= arch.latency_cycles() * 4 + 10,
                "{arch}: not pipelined ({spent} cycles)"
            );
        }
    }

    #[test]
    fn display_names() {
        assert_eq!(
            AltArch::Mixed32x128.to_string(),
            "mixed-32/128 (this paper)"
        );
        assert_eq!(AltArch::Serial8.to_string(), "serial-8");
    }
}

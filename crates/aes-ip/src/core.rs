//! Cycle-accurate models of the three IP variants (paper §4).
//!
//! The datapath processes `ByteSub` 32 bits per clock (4 S-boxes) and
//! everything else 128 bits wide, so a round takes **5 clock cycles**
//! (the paper's headline: 5 instead of the 12 an all-32-bit datapath
//! needs) and a block takes **50 cycles** — exactly the latency/clock
//! ratio of every row of the paper's Table 2.
//!
//! Round keys are generated **on the fly**: the encrypt path steps the
//! schedule forward one round key per round with the `KStran` S-box slice;
//! the decrypt path first walks the schedule forward once during the
//! `setup` period (10 cycles) to reach the final round key, then steps
//! *backwards* one round key per round while deciphering.
//!
//! Micro-schedule per round (encrypt):
//!
//! | cycle | work |
//! |---|---|
//! | 1 | `ByteSub` column 0 (32 bits); key schedule computes next round key |
//! | 2–4 | `ByteSub` columns 1–3 |
//! | 5 | `ShiftRow` + `MixColumn` (skipped in round 10) + `AddKey`, all 128 bits |
//!
//! Decrypt mirrors it: cycles 1–4 run `IShiftRow` (wiring) + `IByteSub`
//! slices, cycle 5 runs `AddKey` + `IMixColumn` (skipped when the next key
//! is round key 0).
//!
//! An **idle** engine absorbs the block from `din` on the `wr_data` edge
//! itself (the initial `AddKey` is folded into the load path), so `data_ok`
//! rises exactly [`LATENCY_CYCLES`] edges after the data write — the
//! latency = 50 × Tclk relation every row of Table 2 satisfies. When the
//! engine is busy, `wr_data` lands in the decoupled `Data_In` register and
//! is absorbed on the edge that finishes the running block.

use core::fmt;

use crate::datapath as dp;

/// Whether a combined core enciphers or deciphers the next block
/// (the `enc/dec` pin of Table 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Direction {
    /// Encipher.
    #[default]
    Encrypt,
    /// Decipher.
    Decrypt,
}

/// Which of the paper's three devices a core models.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CoreVariant {
    /// Encrypt-only device.
    Encrypt,
    /// Decrypt-only device.
    Decrypt,
    /// Combined encrypt/decrypt device with the `enc/dec` pin.
    EncDec,
}

impl CoreVariant {
    /// Number of 256×8 S-box ROMs the variant instantiates
    /// (Table 2's memory column: 8 → 16 Kibit, 16 → 32 Kibit).
    #[must_use]
    pub const fn sbox_count(self) -> usize {
        match self {
            // 4 ByteSub + 4 KStran.
            CoreVariant::Encrypt => 8,
            // 4 IByteSub + 4 KStran (the key schedule always runs forward
            // S-boxes).
            CoreVariant::Decrypt => 8,
            // The paper implements the combined device as both banks.
            CoreVariant::EncDec => 16,
        }
    }

    /// `true` when the variant can encipher.
    #[must_use]
    pub const fn supports_encrypt(self) -> bool {
        matches!(self, CoreVariant::Encrypt | CoreVariant::EncDec)
    }

    /// `true` when the variant can decipher.
    #[must_use]
    pub const fn supports_decrypt(self) -> bool {
        matches!(self, CoreVariant::Decrypt | CoreVariant::EncDec)
    }
}

impl fmt::Display for CoreVariant {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            CoreVariant::Encrypt => "Encrypt",
            CoreVariant::Decrypt => "Decrypt",
            CoreVariant::EncDec => "Both",
        };
        f.write_str(s)
    }
}

/// Input pins sampled at a rising clock edge (paper Table 1).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CoreInputs {
    /// Configuration period when high: key writes are accepted and the
    /// engine is held.
    pub setup: bool,
    /// Data on `din` is a block to process.
    pub wr_data: bool,
    /// Data on `din` is a new cipher key (honoured during `setup`).
    pub wr_key: bool,
    /// The shared 128-bit input bus.
    pub din: u128,
    /// Encrypt/decrypt select; only the combined device routes it.
    pub enc_dec: Direction,
}

/// Output pins after a rising clock edge.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CoreOutputs {
    /// High when `dout` holds a fresh result (the bus may read) and the
    /// engine can absorb a new block.
    pub data_ok: bool,
    /// The 128-bit output bus.
    pub dout: u128,
}

/// A clocked core model: one call per rising clock edge.
///
/// The trait is object-safe; the bus wrapper, the RTL mount and the
/// benchmark harness all hold `Box<dyn CycleCore>`.
pub trait CycleCore {
    /// Advances one clock cycle: samples `inputs`, updates every register,
    /// returns the registered outputs.
    fn rising_edge(&mut self, inputs: &CoreInputs) -> CoreOutputs;

    /// Which device this models.
    fn variant(&self) -> CoreVariant;

    /// Clock cycles from absorbing a block to `data_ok` (50 for this IP).
    fn latency_cycles(&self) -> u64;

    /// Clock cycles of `setup` needed after a key write before decryption
    /// may start (0 when the core cannot decrypt).
    fn key_setup_cycles(&self) -> u64;

    /// `true` while a block is in flight.
    fn busy(&self) -> bool;

    /// Number of results delivered to the `Out` register so far
    /// (model observability, not a hardware pin — the bus driver uses it
    /// to distinguish back-to-back completions whose ciphertexts happen to
    /// coincide).
    fn results_count(&self) -> u64;

    /// `true` while the single-entry `Data_In` register holds a block the
    /// engine has not absorbed yet (model observability; the bus master
    /// uses it to avoid overwriting an unconsumed block).
    fn has_pending(&self) -> bool;

    /// Short architecture name for reports.
    fn name(&self) -> &'static str {
        "aes128-mixed32x128"
    }
}

/// Cycles one round occupies in the mixed 32/128-bit datapath.
pub const CYCLES_PER_ROUND: u64 = 5;
/// Rounds of AES-128.
pub const ROUNDS: u64 = 10;
/// Block latency in clock cycles (Table 2: latency / clock period = 50 for
/// every device and family).
pub const LATENCY_CYCLES: u64 = CYCLES_PER_ROUND * ROUNDS;
/// Setup cycles the decrypt path needs to reach the last round key.
pub const KEY_SETUP_CYCLES: u64 = ROUNDS;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Fsm {
    Idle,
    /// `round` 1..=10, `cycle` 1..=5; the stored value is the *next* cycle
    /// to execute.
    Running {
        round: u8,
        cycle: u8,
    },
}

/// The shared engine behind the three variants.
#[derive(Debug, Clone)]
struct Engine {
    variant: CoreVariant,
    // --- registers ---
    /// Cipher key (round key 0).
    key0: u128,
    /// Final round key (K10), computed during setup for the decrypt path.
    key_end: u128,
    /// Round key currently feeding the `AddKey` plane.
    round_key: u128,
    /// The working `state_t` register.
    state: u128,
    /// `Data_In` holding register (loaded by `wr_data`, consumed by the
    /// engine — the decoupling of the paper's Figure 8).
    data_in: u128,
    data_in_valid: bool,
    /// Latched direction for the block being processed / about to start.
    dir_latched: Direction,
    /// Direction captured with the pending `data_in` word.
    dir_pending: Direction,
    /// `Out` register.
    dout: u128,
    data_ok: bool,
    /// Key-setup walker (computing `key_end` after a key write).
    setup_step: u8,
    setup_walker: u128,
    key_ready_for_dec: bool,
    fsm: Fsm,
    results: u64,
}

impl Engine {
    fn new(variant: CoreVariant) -> Self {
        Engine {
            variant,
            key0: 0,
            key_end: 0,
            round_key: 0,
            state: 0,
            data_in: 0,
            data_in_valid: false,
            dir_latched: Direction::Encrypt,
            dir_pending: Direction::Encrypt,
            dout: 0,
            data_ok: false,
            setup_step: 0,
            setup_walker: 0,
            key_ready_for_dec: !matches!(variant, CoreVariant::Decrypt | CoreVariant::EncDec),
            fsm: Fsm::Idle,
            results: 0,
        }
    }

    fn effective_dir(&self, pin: Direction) -> Direction {
        match self.variant {
            CoreVariant::Encrypt => Direction::Encrypt,
            CoreVariant::Decrypt => Direction::Decrypt,
            CoreVariant::EncDec => pin,
        }
    }

    /// `true` when a pending block may be absorbed right now.
    fn can_consume(&self) -> bool {
        self.data_in_valid && (self.dir_pending == Direction::Encrypt || self.key_ready_for_dec)
    }

    /// Absorb the pending block: the initial `AddKey` is folded into the
    /// load path, so this does not cost an extra cycle.
    fn consume(&mut self) {
        debug_assert!(self.can_consume());
        self.dir_latched = self.dir_pending;
        self.state = match self.dir_latched {
            Direction::Encrypt => dp::add_key(self.data_in, self.key0),
            Direction::Decrypt => dp::add_key(self.data_in, self.key_end),
        };
        self.round_key = match self.dir_latched {
            Direction::Encrypt => self.key0,
            Direction::Decrypt => self.key_end,
        };
        self.data_in_valid = false;
        self.fsm = Fsm::Running { round: 1, cycle: 1 };
    }

    fn rising_edge(&mut self, inputs: &CoreInputs) -> CoreOutputs {
        // --- configuration period ------------------------------------
        if inputs.setup {
            if inputs.wr_key {
                self.key0 = inputs.din;
                self.setup_step = 0;
                self.setup_walker = inputs.din;
                self.key_ready_for_dec = !self.variant.supports_decrypt();
                // A key change invalidates anything in flight.
                self.fsm = Fsm::Idle;
                self.data_in_valid = false;
                self.data_ok = false;
            } else if self.variant.supports_decrypt() && !self.key_ready_for_dec {
                // Walk the schedule forward one round key per cycle.
                self.setup_step += 1;
                self.setup_walker =
                    dp::next_round_key(self.setup_walker, usize::from(self.setup_step));
                if u64::from(self.setup_step) == ROUNDS {
                    self.key_end = self.setup_walker;
                    self.key_ready_for_dec = true;
                }
            }
            return CoreOutputs {
                data_ok: self.data_ok,
                dout: self.dout,
            };
        }

        // --- operation period ----------------------------------------
        // Data_In process: independent of the engine, any cycle.
        if inputs.wr_data {
            self.data_in = inputs.din;
            self.data_in_valid = true;
            self.dir_pending = self.effective_dir(inputs.enc_dec);
        }

        match self.fsm {
            Fsm::Idle => {
                if self.can_consume() {
                    self.consume();
                }
            }
            Fsm::Running { round, cycle } => {
                match self.dir_latched {
                    Direction::Encrypt => self.encrypt_cycle(round, cycle),
                    Direction::Decrypt => self.decrypt_cycle(round, cycle),
                }
                // Advance the micro-program counter.
                if cycle < 5 {
                    self.fsm = Fsm::Running {
                        round,
                        cycle: cycle + 1,
                    };
                } else if u64::from(round) < ROUNDS {
                    self.fsm = Fsm::Running {
                        round: round + 1,
                        cycle: 1,
                    };
                } else {
                    // Block finished this edge; the Out register was
                    // written by the cycle handler. Absorb a pending block
                    // on the same edge — the state register is free.
                    self.fsm = Fsm::Idle;
                    if self.can_consume() {
                        self.consume();
                    }
                }
            }
        }

        CoreOutputs {
            data_ok: self.data_ok,
            dout: self.dout,
        }
    }

    fn encrypt_cycle(&mut self, round: u8, cycle: u8) {
        match cycle {
            1..=4 => {
                let c = usize::from(cycle - 1);
                self.state =
                    dp::with_column(self.state, c, dp::byte_sub_word(dp::column(self.state, c)));
                if cycle == 1 {
                    // Key schedule runs in parallel with the ByteSub slices.
                    self.round_key = dp::next_round_key(self.round_key, usize::from(round));
                }
            }
            5 => {
                let mut s = dp::shift_rows(self.state);
                if u64::from(round) < ROUNDS {
                    s = dp::mix_columns(s);
                }
                s = dp::add_key(s, self.round_key);
                self.state = s;
                if u64::from(round) == ROUNDS {
                    self.dout = s;
                    self.data_ok = true;
                    self.results += 1;
                }
            }
            _ => unreachable!("cycle counter out of range"),
        }
    }

    fn decrypt_cycle(&mut self, round: u8, cycle: u8) {
        // Decrypt block `round` undoes encrypt round `11 - round`.
        let enc_round = 11 - usize::from(round);
        match cycle {
            1..=4 => {
                if cycle == 1 {
                    // IShiftRow is wiring; fold it into the first slice
                    // cycle (it commutes with the byte-wise IByteSub).
                    self.state = dp::inv_shift_rows(self.state);
                    // Walk the key schedule backwards in parallel.
                    self.round_key = dp::prev_round_key(self.round_key, enc_round);
                }
                let c = usize::from(cycle - 1);
                self.state = dp::with_column(
                    self.state,
                    c,
                    dp::inv_byte_sub_word(dp::column(self.state, c)),
                );
            }
            5 => {
                let mut s = dp::add_key(self.state, self.round_key);
                if u64::from(round) < ROUNDS {
                    // Not yet at round key 0: undo the MixColumn.
                    s = dp::inv_mix_columns(s);
                }
                self.state = s;
                if u64::from(round) == ROUNDS {
                    self.dout = s;
                    self.data_ok = true;
                    self.results += 1;
                }
            }
            _ => unreachable!("cycle counter out of range"),
        }
    }
}

macro_rules! core_variant {
    ($(#[$doc:meta])* $name:ident, $variant:expr, $can_dec:expr) => {
        $(#[$doc])*
        #[derive(Debug, Clone)]
        pub struct $name {
            engine: Engine,
        }

        impl $name {
            /// Creates the core with all registers cleared.
            #[must_use]
            pub fn new() -> Self {
                $name { engine: Engine::new($variant) }
            }

            /// `true` once a written key is usable for decryption
            /// (always `true` for encrypt-only cores).
            #[must_use]
            pub fn key_ready(&self) -> bool {
                self.engine.key_ready_for_dec
            }

            /// The `Data_In` register currently holds an unconsumed block.
            #[must_use]
            pub fn has_pending_data(&self) -> bool {
                self.engine.data_in_valid
            }
        }

        impl Default for $name {
            fn default() -> Self {
                Self::new()
            }
        }

        impl CycleCore for $name {
            fn rising_edge(&mut self, inputs: &CoreInputs) -> CoreOutputs {
                self.engine.rising_edge(inputs)
            }
            fn variant(&self) -> CoreVariant {
                $variant
            }
            fn latency_cycles(&self) -> u64 {
                LATENCY_CYCLES
            }
            fn key_setup_cycles(&self) -> u64 {
                if $can_dec { KEY_SETUP_CYCLES } else { 0 }
            }
            fn busy(&self) -> bool {
                !matches!(self.engine.fsm, Fsm::Idle)
            }
            fn results_count(&self) -> u64 {
                self.engine.results
            }
            fn has_pending(&self) -> bool {
                self.engine.data_in_valid
            }
        }
    };
}

core_variant!(
    /// The encrypt-only device (first row block of Table 2).
    ///
    /// # Examples
    ///
    /// ```
    /// use aes_ip::core::{CoreInputs, CycleCore, EncryptCore, LATENCY_CYCLES};
    ///
    /// let mut core = EncryptCore::new();
    /// // Load the key during setup.
    /// core.rising_edge(&CoreInputs { setup: true, wr_key: true, din: 0, ..Default::default() });
    /// // Write a block, then clock 50 cycles.
    /// core.rising_edge(&CoreInputs { wr_data: true, din: 0, ..Default::default() });
    /// let mut out = Default::default();
    /// for _ in 0..=LATENCY_CYCLES {
    ///     out = core.rising_edge(&CoreInputs::default());
    /// }
    /// // AES-128, zero key, zero plaintext.
    /// assert_eq!(out.dout, u128::from_be_bytes([
    ///     0x66, 0xE9, 0x4B, 0xD4, 0xEF, 0x8A, 0x2C, 0x3B,
    ///     0x88, 0x4C, 0xFA, 0x59, 0xCA, 0x34, 0x2B, 0x2E,
    /// ]));
    /// ```
    EncryptCore, CoreVariant::Encrypt, false
);

core_variant!(
    /// The decrypt-only device (second row block of Table 2). Requires
    /// `setup` to stay high for [`KEY_SETUP_CYCLES`] cycles after the key
    /// write so the on-the-fly schedule can reach the final round key.
    DecryptCore, CoreVariant::Decrypt, true
);

core_variant!(
    /// The combined encrypt/decrypt device (third row block of Table 2),
    /// steered by the `enc/dec` pin per block.
    EncDecCore, CoreVariant::EncDec, true
);

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datapath::{block_to_u128, u128_to_block};
    use rijndael::vectors::AES128_VECTORS;

    fn key_of(v: &rijndael::vectors::KnownAnswer) -> u128 {
        let mut k = [0u8; 16];
        k.copy_from_slice(v.key);
        block_to_u128(&k)
    }

    /// Drives a full key-load + single-block operation and returns the
    /// output along with the number of cycles from data write to data_ok.
    fn run_block<C: CycleCore>(
        core: &mut C,
        key: u128,
        block: u128,
        dir: Direction,
    ) -> (u128, u64) {
        // Setup: write key, then hold setup for the key walk.
        core.rising_edge(&CoreInputs {
            setup: true,
            wr_key: true,
            din: key,
            ..Default::default()
        });
        for _ in 0..core.key_setup_cycles() {
            core.rising_edge(&CoreInputs {
                setup: true,
                ..Default::default()
            });
        }
        // Operation: write the block.
        core.rising_edge(&CoreInputs {
            wr_data: true,
            din: block,
            enc_dec: dir,
            ..Default::default()
        });
        let mut cycles = 0u64;
        loop {
            cycles += 1;
            let out = core.rising_edge(&CoreInputs {
                enc_dec: dir,
                ..Default::default()
            });
            if out.data_ok {
                return (out.dout, cycles);
            }
            assert!(cycles < 500, "core never asserted data_ok");
        }
    }

    #[test]
    fn encrypt_core_passes_published_vectors() {
        for v in AES128_VECTORS {
            let mut core = EncryptCore::new();
            let (out, cycles) = run_block(
                &mut core,
                key_of(v),
                block_to_u128(&v.plaintext),
                Direction::Encrypt,
            );
            assert_eq!(u128_to_block(out), v.ciphertext, "{}", v.source);
            // An idle engine absorbs the block on the write edge itself,
            // so data_ok arrives exactly 50 edges after the data write.
            assert_eq!(cycles, LATENCY_CYCLES, "{}", v.source);
        }
    }

    #[test]
    fn decrypt_core_passes_published_vectors() {
        for v in AES128_VECTORS {
            let mut core = DecryptCore::new();
            let (out, cycles) = run_block(
                &mut core,
                key_of(v),
                block_to_u128(&v.ciphertext),
                Direction::Decrypt,
            );
            assert_eq!(u128_to_block(out), v.plaintext, "{}", v.source);
            assert_eq!(cycles, LATENCY_CYCLES, "{}", v.source);
        }
    }

    #[test]
    fn encdec_core_handles_both_directions() {
        let v = &AES128_VECTORS[0];
        let mut core = EncDecCore::new();
        let (ct, _) = run_block(
            &mut core,
            key_of(v),
            block_to_u128(&v.plaintext),
            Direction::Encrypt,
        );
        assert_eq!(u128_to_block(ct), v.ciphertext);
        // Same device, now decrypt — key stays loaded.
        core.rising_edge(&CoreInputs {
            wr_data: true,
            din: ct,
            enc_dec: Direction::Decrypt,
            ..Default::default()
        });
        let mut out = CoreOutputs::default();
        for _ in 0..=LATENCY_CYCLES {
            out = core.rising_edge(&CoreInputs {
                enc_dec: Direction::Decrypt,
                ..Default::default()
            });
        }
        assert!(out.data_ok);
        assert_eq!(u128_to_block(out.dout), v.plaintext);
    }

    #[test]
    fn latency_is_exactly_fifty_cycles() {
        assert_eq!(LATENCY_CYCLES, 50);
        assert_eq!(CYCLES_PER_ROUND, 5);
        // The paper's Table 2 rows all satisfy latency = 50 × clock:
        // 700/14, 750/15, 850/17, 500/10, 550/11, 650/13.
        for (lat_ns, clk_ns) in [
            (700, 14),
            (750, 15),
            (850, 17),
            (500, 10),
            (550, 11),
            (650, 13),
        ] {
            assert_eq!(lat_ns / clk_ns, 50);
        }
    }

    #[test]
    fn back_to_back_blocks_sustain_full_rate() {
        // Write block B while block A is processing; data_ok for B must
        // come exactly 50 cycles after data_ok for A.
        let key = 0u128;
        let mut core = EncryptCore::new();
        core.rising_edge(&CoreInputs {
            setup: true,
            wr_key: true,
            din: key,
            ..Default::default()
        });
        core.rising_edge(&CoreInputs {
            wr_data: true,
            din: 1,
            ..Default::default()
        });

        let mut first_ok_at = None;
        let mut second_ok_at = None;
        let mut wrote_second = false;
        let mut outputs = Vec::new();
        for t in 1..=130u64 {
            // Push the second block mid-flight of the first.
            let inputs = if t == 20 {
                wrote_second = true;
                CoreInputs {
                    wr_data: true,
                    din: 2,
                    ..Default::default()
                }
            } else {
                CoreInputs::default()
            };
            let out = core.rising_edge(&inputs);
            outputs.push(out);
            if out.data_ok && first_ok_at.is_none() {
                first_ok_at = Some(t);
            } else if let Some(f) = first_ok_at {
                if second_ok_at.is_none() && out.dout != outputs[(f - 1) as usize].dout {
                    second_ok_at = Some(t);
                }
            }
        }
        assert!(wrote_second);
        let f = first_ok_at.expect("first block completed");
        let s = second_ok_at.expect("second block completed");
        assert_eq!(f, LATENCY_CYCLES);
        assert_eq!(
            s - f,
            LATENCY_CYCLES,
            "sustained rate must be one block per 50 cycles"
        );
    }

    #[test]
    fn overlapped_load_does_not_corrupt_running_block() {
        let v = &AES128_VECTORS[0];
        let mut core = EncryptCore::new();
        core.rising_edge(&CoreInputs {
            setup: true,
            wr_key: true,
            din: key_of(v),
            ..Default::default()
        });
        core.rising_edge(&CoreInputs {
            wr_data: true,
            din: block_to_u128(&v.plaintext),
            ..Default::default()
        });
        let mut out = CoreOutputs::default();
        for t in 1..=LATENCY_CYCLES {
            // Continuously rewrite Data_In with garbage mid-flight.
            let inputs = if t % 7 == 3 {
                CoreInputs {
                    wr_data: true,
                    din: u128::from(t) * 0x0101_0101,
                    ..Default::default()
                }
            } else {
                CoreInputs::default()
            };
            out = core.rising_edge(&inputs);
        }
        assert!(out.data_ok);
        assert_eq!(u128_to_block(out.dout), v.ciphertext);
    }

    #[test]
    fn decrypt_requires_key_setup_walk() {
        let v = &AES128_VECTORS[0];
        let mut core = DecryptCore::new();
        core.rising_edge(&CoreInputs {
            setup: true,
            wr_key: true,
            din: key_of(v),
            ..Default::default()
        });
        assert!(!core.key_ready());
        // Attempt to feed data immediately: the engine must hold it until
        // the key walk finishes (done here with setup low, so the walk is
        // stalled — the block waits).
        core.rising_edge(&CoreInputs {
            wr_data: true,
            din: block_to_u128(&v.ciphertext),
            enc_dec: Direction::Decrypt,
            ..Default::default()
        });
        assert!(core.has_pending_data());
        assert!(!core.busy());
        // Now run the setup walk.
        for _ in 0..KEY_SETUP_CYCLES {
            core.rising_edge(&CoreInputs {
                setup: true,
                ..Default::default()
            });
        }
        assert!(core.key_ready());
        // The held block is absorbed on the next operational edge.
        let mut out = CoreOutputs::default();
        for _ in 0..=LATENCY_CYCLES {
            out = core.rising_edge(&CoreInputs::default());
        }
        assert!(out.data_ok);
        assert_eq!(u128_to_block(out.dout), v.plaintext);
    }

    #[test]
    fn key_rewrite_invalidates_inflight_work() {
        let mut core = EncryptCore::new();
        core.rising_edge(&CoreInputs {
            setup: true,
            wr_key: true,
            din: 7,
            ..Default::default()
        });
        core.rising_edge(&CoreInputs {
            wr_data: true,
            din: 9,
            ..Default::default()
        });
        for _ in 0..10 {
            core.rising_edge(&CoreInputs::default());
        }
        assert!(core.busy());
        core.rising_edge(&CoreInputs {
            setup: true,
            wr_key: true,
            din: 8,
            ..Default::default()
        });
        assert!(!core.busy());
        assert!(!core.has_pending_data());
    }

    #[test]
    fn variant_metadata() {
        assert_eq!(EncryptCore::new().variant().sbox_count(), 8);
        assert_eq!(DecryptCore::new().variant().sbox_count(), 8);
        assert_eq!(EncDecCore::new().variant().sbox_count(), 16);
        assert!(CoreVariant::EncDec.supports_encrypt());
        assert!(CoreVariant::EncDec.supports_decrypt());
        assert!(!CoreVariant::Encrypt.supports_decrypt());
        assert_eq!(CoreVariant::EncDec.to_string(), "Both");
        assert_eq!(EncryptCore::new().key_setup_cycles(), 0);
        assert_eq!(DecryptCore::new().key_setup_cycles(), 10);
    }

    #[test]
    fn random_cross_check_against_reference() {
        let mut x: u64 = 0xA5A5_5A5A_DEAD_BEEF;
        let mut next = move || {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            x
        };
        for _ in 0..20 {
            let key_bytes: [u8; 16] = core::array::from_fn(|_| next() as u8);
            let pt_bytes: [u8; 16] = core::array::from_fn(|_| next() as u8);
            let aes = rijndael::Aes128::new(&key_bytes);
            let expect = aes.encrypt_block(&pt_bytes);

            let mut enc = EncryptCore::new();
            let (ct, _) = run_block(
                &mut enc,
                block_to_u128(&key_bytes),
                block_to_u128(&pt_bytes),
                Direction::Encrypt,
            );
            assert_eq!(u128_to_block(ct), expect);

            let mut dec = DecryptCore::new();
            let (pt, _) = run_block(&mut dec, block_to_u128(&key_bytes), ct, Direction::Decrypt);
            assert_eq!(u128_to_block(pt), pt_bytes);
        }
    }
}

//! Clocks the gate-level netlist as a [`CycleCore`].
//!
//! [`GateLevelCore`] evaluates the structural netlist of
//! [`crate::netlist_gen`] one clock edge at a time, exposing the same
//! pin-level interface as the cycle-accurate models — so the two
//! descriptions of the IP can be driven with identical stimulus and
//! compared output-for-output, the reproduction's equivalent of running
//! the VHDL through ModelSim against a golden model.

use std::collections::HashMap;

use netlist::ir::{CellKind, NetId, Netlist};
use netlist::power::ActivityTrace;

use crate::core::{CoreInputs, CoreOutputs, CoreVariant, CycleCore, Direction};
use crate::netlist_gen::{build_core_netlist_probed, CoreProbes, RomStyle};

/// The structural netlist driven cycle by cycle.
///
/// # Examples
///
/// ```
/// use aes_ip::core::{CoreInputs, CoreVariant, CycleCore};
/// use aes_ip::gate_sim::GateLevelCore;
/// use aes_ip::netlist_gen::RomStyle;
///
/// let mut core = GateLevelCore::new(CoreVariant::Encrypt, RomStyle::Macro);
/// core.rising_edge(&CoreInputs { setup: true, wr_key: true, din: 0, ..Default::default() });
/// core.rising_edge(&CoreInputs { wr_data: true, din: 0, ..Default::default() });
/// let mut out = Default::default();
/// for _ in 0..50 {
///     out = core.rising_edge(&CoreInputs::default());
/// }
/// assert!(out.data_ok);
/// assert_eq!(out.dout >> 120, 0x66); // AES-128 zero vector, first byte
/// ```
#[derive(Debug, Clone)]
pub struct GateLevelCore {
    netlist: Netlist,
    variant: CoreVariant,
    /// Current value of every flip-flop output.
    state: HashMap<NetId, bool>,
    /// All DFF nets with their data operands, precomputed.
    dffs: Vec<(NetId, NetId)>,
    // Port nets.
    setup: NetId,
    wr_data: NetId,
    wr_key: NetId,
    din: Vec<NetId>,
    enc_dec: Option<NetId>,
    data_ok: NetId,
    dout: Vec<NetId>,
    results: u64,
    last_data_ok: bool,
    /// Internal signal taps (available when built via [`GateLevelCore::new`]).
    probes: Option<CoreProbes>,
    /// Sampled probe values from the last edge.
    probe_busy: bool,
    probe_pending: bool,
    /// Switching-activity collection (power analysis); off by default.
    activity: Option<ActivityTrace>,
    prev_values: Option<Vec<bool>>,
}

impl GateLevelCore {
    /// Builds the netlist for `variant` and wraps it for simulation. All
    /// registers start cleared (the cycle-accurate models start the same
    /// way).
    ///
    /// # Panics
    ///
    /// Panics if the generated netlist is malformed (a bug, not an input
    /// condition).
    #[must_use]
    pub fn new(variant: CoreVariant, rom_style: RomStyle) -> Self {
        let (netlist, probes) = build_core_netlist_probed(variant, rom_style);
        let mut core = Self::from_netlist(netlist, variant);
        core.probes = Some(probes);
        core
    }

    /// Wraps an already-built core netlist.
    ///
    /// # Panics
    ///
    /// Panics if the expected ports are missing.
    #[must_use]
    pub fn from_netlist(netlist: Netlist, variant: CoreVariant) -> Self {
        let find_in = |name: &str| {
            netlist
                .inputs()
                .iter()
                .find(|p| p.name == name)
                .unwrap_or_else(|| panic!("missing input port {name}"))
                .net
        };
        let setup = find_in("setup");
        let wr_data = find_in("wr_data");
        let wr_key = find_in("wr_key");
        let din: Vec<NetId> = (0..128).map(|i| find_in(&format!("din[{i}]"))).collect();
        let enc_dec = netlist
            .inputs()
            .iter()
            .find(|p| p.name == "enc_dec")
            .map(|p| p.net);

        let find_out = |name: &str| {
            netlist
                .outputs()
                .iter()
                .find(|p| p.name == name)
                .unwrap_or_else(|| panic!("missing output port {name}"))
                .net
        };
        let data_ok = find_out("data_ok");
        let dout: Vec<NetId> = (0..128).map(|i| find_out(&format!("dout[{i}]"))).collect();

        let mut dffs = Vec::new();
        let mut state = HashMap::new();
        for (i, cell) in netlist.cells().iter().enumerate() {
            if matches!(cell.kind, CellKind::Dff) {
                let q = NetId(i as u32);
                dffs.push((q, cell.inputs[0]));
                state.insert(q, false);
            }
        }

        GateLevelCore {
            netlist,
            variant,
            state,
            dffs,
            setup,
            wr_data,
            wr_key,
            din,
            enc_dec,
            data_ok,
            dout,
            results: 0,
            last_data_ok: false,
            probes: None,
            probe_busy: false,
            probe_pending: false,
            activity: None,
            prev_values: None,
        }
    }

    /// Current flip-flop count (diagnostics).
    #[must_use]
    pub fn dff_count(&self) -> usize {
        self.dffs.len()
    }

    /// Access to the wrapped netlist.
    #[must_use]
    pub fn netlist(&self) -> &Netlist {
        &self.netlist
    }

    /// Starts collecting switching activity for the power model
    /// (the paper's §6 future work). Counting begins at the next edge.
    pub fn enable_activity(&mut self) {
        self.activity = Some(ActivityTrace::new(&self.netlist));
        self.prev_values = None;
    }

    /// Stops collection and returns the trace, if any was recorded.
    pub fn take_activity(&mut self) -> Option<ActivityTrace> {
        self.prev_values = None;
        self.activity.take()
    }

    /// Flips one flip-flop's stored value — a single-event upset
    /// (see [`crate::fault`]).
    ///
    /// # Panics
    ///
    /// Panics if `index >= self.dff_count()`.
    pub fn flip_ff(&mut self, index: usize) {
        let (q, _) = self.dffs[index];
        let v = self.state[&q];
        self.state.insert(q, !v);
    }
}

impl CycleCore for GateLevelCore {
    fn rising_edge(&mut self, inputs: &CoreInputs) -> CoreOutputs {
        let mut input_values: HashMap<NetId, bool> = HashMap::new();
        input_values.insert(self.setup, inputs.setup);
        input_values.insert(self.wr_data, inputs.wr_data);
        input_values.insert(self.wr_key, inputs.wr_key);
        for (i, &net) in self.din.iter().enumerate() {
            input_values.insert(net, (inputs.din >> i) & 1 == 1);
        }
        if let Some(ed) = self.enc_dec {
            input_values.insert(ed, matches!(inputs.enc_dec, Direction::Decrypt));
        }

        let values = self.netlist.evaluate(&input_values, &self.state);

        if let Some(trace) = &mut self.activity {
            if let Some(prev) = &self.prev_values {
                trace.record(prev, &values);
            }
            self.prev_values = Some(values.clone());
        }

        // Probe sampling: a result is delivered on edges where the
        // internal `finishing` strobe is high; busy/pending are the
        // post-edge register values.
        if let Some(p) = &self.probes {
            if values[p.finishing.idx()] {
                self.results += 1;
            }
        }

        // Clock edge: every register captures its D operand.
        for &(q, d) in &self.dffs {
            self.state.insert(q, values[d.idx()]);
        }

        // Outputs are registered: read the post-edge register values.
        let data_ok = self.state[&self.data_ok];
        let mut dout = 0u128;
        for (i, &net) in self.dout.iter().enumerate() {
            if self.state[&net] {
                dout |= 1u128 << i;
            }
        }
        if self.probes.is_none() && data_ok && !self.last_data_ok {
            // Without probes only data_ok rising edges are observable;
            // with probes the `finishing` strobe above counts every
            // completion, including back-to-back ones.
            self.results += 1;
        }
        self.last_data_ok = data_ok;
        if let Some(p) = &self.probes {
            self.probe_busy = self.state[&p.busy];
            self.probe_pending = self.state[&p.data_in_valid];
        }

        CoreOutputs { data_ok, dout }
    }

    fn variant(&self) -> CoreVariant {
        self.variant
    }

    fn latency_cycles(&self) -> u64 {
        crate::core::LATENCY_CYCLES
    }

    fn key_setup_cycles(&self) -> u64 {
        if self.variant.supports_decrypt() {
            crate::core::KEY_SETUP_CYCLES
        } else {
            0
        }
    }

    fn busy(&self) -> bool {
        match &self.probes {
            Some(_) => self.probe_busy,
            // Without probes, be conservative: "maybe busy" whenever a
            // result has not just appeared.
            None => !self.last_data_ok,
        }
    }

    fn results_count(&self) -> u64 {
        self.results
    }

    fn has_pending(&self) -> bool {
        self.probes.is_some() && self.probe_pending
    }

    fn name(&self) -> &'static str {
        "aes128-mixed32x128 (gate level)"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::core::{DecryptCore, EncDecCore, EncryptCore};
    use crate::datapath::{block_to_u128, u128_to_block};
    use rijndael::vectors::{FIPS197_C1, ZERO_VECTOR_128};

    fn drive_block<C: CycleCore>(
        core: &mut C,
        key: u128,
        block: u128,
        dir: Direction,
        setup_cycles: u64,
    ) -> u128 {
        core.rising_edge(&CoreInputs {
            setup: true,
            wr_key: true,
            din: key,
            ..Default::default()
        });
        for _ in 0..setup_cycles {
            core.rising_edge(&CoreInputs {
                setup: true,
                ..Default::default()
            });
        }
        core.rising_edge(&CoreInputs {
            wr_data: true,
            din: block,
            enc_dec: dir,
            ..Default::default()
        });
        let mut out = CoreOutputs::default();
        for _ in 0..50 {
            out = core.rising_edge(&CoreInputs {
                enc_dec: dir,
                ..Default::default()
            });
        }
        assert!(out.data_ok, "gate-level core never finished");
        out.dout
    }

    #[test]
    fn gate_level_encrypt_matches_vector() {
        let mut core = GateLevelCore::new(CoreVariant::Encrypt, RomStyle::Macro);
        let mut key = [0u8; 16];
        key.copy_from_slice(FIPS197_C1.key);
        let ct = drive_block(
            &mut core,
            block_to_u128(&key),
            block_to_u128(&FIPS197_C1.plaintext),
            Direction::Encrypt,
            0,
        );
        assert_eq!(u128_to_block(ct), FIPS197_C1.ciphertext);
    }

    #[test]
    fn gate_level_decrypt_matches_vector() {
        let mut core = GateLevelCore::new(CoreVariant::Decrypt, RomStyle::Macro);
        let mut key = [0u8; 16];
        key.copy_from_slice(FIPS197_C1.key);
        let pt = drive_block(
            &mut core,
            block_to_u128(&key),
            block_to_u128(&FIPS197_C1.ciphertext),
            Direction::Decrypt,
            10,
        );
        assert_eq!(u128_to_block(pt), FIPS197_C1.plaintext);
    }

    #[test]
    fn gate_level_encdec_both_directions() {
        let mut core = GateLevelCore::new(CoreVariant::EncDec, RomStyle::Macro);
        let key = block_to_u128(&[0u8; 16]);
        let ct = drive_block(&mut core, key, 0, Direction::Encrypt, 10);
        assert_eq!(u128_to_block(ct), ZERO_VECTOR_128.ciphertext);
        // Decrypt on the same device without reloading the key.
        core.rising_edge(&CoreInputs {
            wr_data: true,
            din: ct,
            enc_dec: Direction::Decrypt,
            ..Default::default()
        });
        let mut out = CoreOutputs::default();
        for _ in 0..50 {
            out = core.rising_edge(&CoreInputs {
                enc_dec: Direction::Decrypt,
                ..Default::default()
            });
        }
        assert_eq!(out.dout, 0);
    }

    #[test]
    fn gate_level_agrees_with_cycle_model_edge_by_edge() {
        // Identical stimulus, compare data_ok and dout at every edge.
        let mut gate = GateLevelCore::new(CoreVariant::Encrypt, RomStyle::Macro);
        let mut model = EncryptCore::new();
        let key = block_to_u128(&[0x42u8; 16]);

        let mut stim = Vec::new();
        stim.push(CoreInputs {
            setup: true,
            wr_key: true,
            din: key,
            ..Default::default()
        });
        stim.push(CoreInputs {
            wr_data: true,
            din: 7,
            ..Default::default()
        });
        for t in 0..160u64 {
            // Sprinkle overlapping writes mid-flight.
            stim.push(if t == 20 || t == 90 {
                CoreInputs {
                    wr_data: true,
                    din: u128::from(t) << 32,
                    ..Default::default()
                }
            } else {
                CoreInputs::default()
            });
        }
        for (t, inputs) in stim.iter().enumerate() {
            let g = gate.rising_edge(inputs);
            let m = model.rising_edge(inputs);
            assert_eq!(g.data_ok, m.data_ok, "data_ok diverged at edge {t}");
            if m.data_ok {
                assert_eq!(g.dout, m.dout, "dout diverged at edge {t}");
            }
        }
    }

    #[test]
    fn gate_level_decrypt_agrees_with_cycle_model() {
        let mut gate = GateLevelCore::new(CoreVariant::Decrypt, RomStyle::Macro);
        let mut model = DecryptCore::new();
        let key = block_to_u128(&[0x13u8; 16]);

        let mut stim = Vec::new();
        stim.push(CoreInputs {
            setup: true,
            wr_key: true,
            din: key,
            ..Default::default()
        });
        for _ in 0..10 {
            stim.push(CoreInputs {
                setup: true,
                ..Default::default()
            });
        }
        stim.push(CoreInputs {
            wr_data: true,
            din: 0xDEAD_BEEF,
            enc_dec: Direction::Decrypt,
            ..Default::default()
        });
        for _ in 0..120u64 {
            stim.push(CoreInputs {
                enc_dec: Direction::Decrypt,
                ..Default::default()
            });
        }
        for (t, inputs) in stim.iter().enumerate() {
            let g = gate.rising_edge(inputs);
            let m = model.rising_edge(inputs);
            assert_eq!(g.data_ok, m.data_ok, "data_ok diverged at edge {t}");
            if m.data_ok {
                assert_eq!(g.dout, m.dout, "dout diverged at edge {t}");
            }
        }
    }

    #[test]
    fn gate_level_encdec_agrees_with_cycle_model() {
        let mut gate = GateLevelCore::new(CoreVariant::EncDec, RomStyle::Macro);
        let mut model = EncDecCore::new();
        let key = block_to_u128(&[0x77u8; 16]);

        let mut stim = Vec::new();
        stim.push(CoreInputs {
            setup: true,
            wr_key: true,
            din: key,
            ..Default::default()
        });
        for _ in 0..10 {
            stim.push(CoreInputs {
                setup: true,
                ..Default::default()
            });
        }
        // Encrypt a block, then decrypt a block.
        stim.push(CoreInputs {
            wr_data: true,
            din: 0x1234,
            ..Default::default()
        });
        for _ in 0..55u64 {
            stim.push(CoreInputs::default());
        }
        stim.push(CoreInputs {
            wr_data: true,
            din: 0x5678,
            enc_dec: Direction::Decrypt,
            ..Default::default()
        });
        for _ in 0..55u64 {
            stim.push(CoreInputs {
                enc_dec: Direction::Decrypt,
                ..Default::default()
            });
        }
        for (t, inputs) in stim.iter().enumerate() {
            let g = gate.rising_edge(inputs);
            let m = model.rising_edge(inputs);
            assert_eq!(g.data_ok, m.data_ok, "data_ok diverged at edge {t}");
            if m.data_ok {
                assert_eq!(g.dout, m.dout, "dout diverged at edge {t}");
            }
        }
    }
}

//! The paper's contribution: a low device occupation AES-128 soft IP
//! (Panato, Barcelos, Reis — DATE 2003).
//!
//! Mixed 32-/128-bit datapath: `ByteSub` runs 32 bits per clock through 4
//! S-box ROMs while `ShiftRow`/`MixColumn`/`AddKey` run 128 bits wide, so a
//! round costs 5 cycles and a block 50; round keys are generated on the
//! fly by the `KStran` slice, so none are stored.
//!
//! * [`datapath`] — the combinational hardware blocks as pure functions;
//! * [`core`] — cycle-accurate models of the three devices
//!   (encrypt / decrypt / both);
//! * [`bus`] — the bus-interface wrapper with the `Data_In`/`Out`
//!   processes and `data_ok` handshake (paper Figures 8–9);
//! * [`rtl_mount`] — mounts a core in the event-driven [`rtl`] simulator
//!   (signals, clock, VCD waveforms);
//! * [`alt`] — the alternative architectures the paper compares against
//!   (all-32-bit, full-128-bit, 8-bit serial);
//! * [`netlist_gen`] — structural netlist generation for logic-cell,
//!   memory and timing estimation on the Altera device models.
//!
//! # Examples
//!
//! ```
//! use aes_ip::core::{CoreInputs, CycleCore, EncryptCore};
//!
//! let mut core = EncryptCore::new();
//! core.rising_edge(&CoreInputs { setup: true, wr_key: true, din: 0, ..Default::default() });
//! core.rising_edge(&CoreInputs { wr_data: true, din: 0, ..Default::default() });
//! let mut out = Default::default();
//! for _ in 0..=50 {
//!     out = core.rising_edge(&CoreInputs::default());
//! }
//! assert!(out.data_ok);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod alt;
pub mod alt_netlist;
pub mod bus;
pub mod core;
pub mod datapath;
pub mod fault;
pub mod gate_sim;
pub mod netlist_gen;
pub mod rtl_mount;

pub use crate::bus::{HardwareAes, IpDriver, StreamError, StreamProgress, StreamSession};
pub use crate::core::{
    CoreInputs, CoreOutputs, CoreVariant, CycleCore, DecryptCore, Direction, EncDecCore,
    EncryptCore, LATENCY_CYCLES,
};

//! Mounts a cycle-accurate core in the event-driven [`rtl`] simulator.
//!
//! This is the ModelSim view of the IP: every pin of the paper's Table 1
//! becomes a [`rtl`] signal, the core becomes a clocked process, and the
//! whole bench can be dumped to a VCD waveform. The cycle-accurate model
//! and the RTL mount are checked against each other in the integration
//! tests.

use std::path::Path;

use rtl::{LogicVec, SignalId, Simulator, Trigger, VcdWriter};

use crate::core::{CoreInputs, CycleCore, Direction};
use crate::datapath::{block_to_u128, u128_to_block};

/// The IP instantiated inside an [`rtl::Simulator`] with a free-running
/// clock.
///
/// # Examples
///
/// ```
/// use aes_ip::core::EncryptCore;
/// use aes_ip::rtl_mount::IpBench;
///
/// let mut bench = IpBench::new(EncryptCore::new(), 7); // 14 ns clock (Acex1K)
/// bench.write_key(&[0u8; 16]);
/// bench.write_data(&[0u8; 16], false);
/// bench.run_cycles(50);
/// assert_eq!(bench.dout()[0], 0x66); // AES-128 zero vector
/// assert!(bench.data_ok());
/// ```
#[derive(Debug)]
pub struct IpBench {
    sim: Simulator,
    /// `clk` — all blocks are clocked by it (Table 1).
    pub clk: SignalId,
    /// `setup` — configuration/operation period select.
    pub setup: SignalId,
    /// `wr_data` — block write strobe.
    pub wr_data: SignalId,
    /// `wr_key` — key write strobe.
    pub wr_key: SignalId,
    /// `din` — shared 128-bit input bus.
    pub din: SignalId,
    /// `enc/dec` — direction select (combined device only).
    pub enc_dec: SignalId,
    /// `data_ok` — result-valid handshake.
    pub data_ok: SignalId,
    /// `dout` — 128-bit output bus.
    pub dout: SignalId,
}

impl IpBench {
    /// Builds the bench around `core` with the given clock half-period
    /// (in simulator time units; the paper's Acex1K encrypt device runs a
    /// 14 ns clock, i.e. half-period 7 with a 1 ns unit).
    ///
    /// # Panics
    ///
    /// Panics if `clock_half_period` is 0.
    #[must_use]
    pub fn new(mut core: impl CycleCore + 'static, clock_half_period: u64) -> Self {
        let mut sim = Simulator::new();
        let clk = sim.add_clock("clk", clock_half_period);
        let setup = sim.add_signal("setup", 1);
        let wr_data = sim.add_signal("wr_data", 1);
        let wr_key = sim.add_signal("wr_key", 1);
        let din = sim.add_signal("din", 128);
        let enc_dec = sim.add_signal("enc_dec", 1);
        let data_ok = sim.add_signal("data_ok", 1);
        let dout = sim.add_signal("dout", 128);

        // Benign defaults so the first edge sees known values.
        sim.set_u128(setup, 0);
        sim.set_u128(wr_data, 0);
        sim.set_u128(wr_key, 0);
        sim.set_u128(enc_dec, 0);
        sim.set(din, LogicVec::zeros(128));

        sim.add_process("rijndael_ip", Trigger::RisingEdge(clk), move |ctx| {
            let inputs = CoreInputs {
                setup: ctx.is_high(setup),
                wr_data: ctx.is_high(wr_data),
                wr_key: ctx.is_high(wr_key),
                din: ctx.read_u128(din).unwrap_or(0),
                enc_dec: if ctx.is_high(enc_dec) {
                    Direction::Decrypt
                } else {
                    Direction::Encrypt
                },
            };
            let out = core.rising_edge(&inputs);
            ctx.write_u128(data_ok, u128::from(out.data_ok));
            ctx.write_u128(dout, out.dout);
        });

        IpBench {
            sim,
            clk,
            setup,
            wr_data,
            wr_key,
            din,
            enc_dec,
            data_ok,
            dout,
        }
    }

    /// Attaches a VCD writer named `scope` to the bench.
    pub fn record_vcd(&mut self, scope: &str) {
        self.sim.attach_vcd(VcdWriter::new(scope));
    }

    /// Stops recording and writes the waveform to `path`.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors; also fails if no VCD was attached.
    pub fn save_vcd(&mut self, path: impl AsRef<Path>) -> std::io::Result<()> {
        match self.sim.detach_vcd() {
            Some(vcd) => vcd.save(path),
            None => Err(std::io::Error::new(
                std::io::ErrorKind::NotFound,
                "no VCD writer attached",
            )),
        }
    }

    /// Stops recording and returns the waveform text.
    #[must_use]
    pub fn vcd_text(&mut self) -> Option<String> {
        self.sim.detach_vcd().map(VcdWriter::finish)
    }

    /// Runs `n` full clock cycles.
    pub fn run_cycles(&mut self, n: u64) {
        self.sim.run_cycles(self.clk, n);
    }

    /// Drives the bus for one clock cycle with the given strobes.
    pub fn step(&mut self, setup: bool, wr_data: bool, wr_key: bool, din: u128, decrypt: bool) {
        self.sim.set_u128(self.setup, u128::from(setup));
        self.sim.set_u128(self.wr_data, u128::from(wr_data));
        self.sim.set_u128(self.wr_key, u128::from(wr_key));
        self.sim.set_u128(self.din, din);
        self.sim.set_u128(self.enc_dec, u128::from(decrypt));
        self.run_cycles(1);
        // Deassert strobes so they are one-cycle pulses.
        self.sim.set_u128(self.wr_data, 0);
        self.sim.set_u128(self.wr_key, 0);
    }

    /// Loads a key: `setup`+`wr_key` for one cycle, then 10 setup cycles
    /// for the decrypt key walk (harmless for encrypt-only cores).
    pub fn write_key(&mut self, key: &[u8; 16]) {
        self.step(true, false, true, block_to_u128(key), false);
        for _ in 0..10 {
            self.step(true, false, false, 0, false);
        }
        self.sim.set_u128(self.setup, 0);
    }

    /// Writes a data block (direction via `decrypt`).
    pub fn write_data(&mut self, block: &[u8; 16], decrypt: bool) {
        self.step(false, true, false, block_to_u128(block), decrypt);
    }

    /// Current `data_ok` level.
    #[must_use]
    pub fn data_ok(&self) -> bool {
        self.sim.get_u128(self.data_ok) == Some(1)
    }

    /// Current `dout` value as wire bytes.
    ///
    /// # Panics
    ///
    /// Panics if `dout` still carries `X` bits (no result yet).
    #[must_use]
    pub fn dout(&self) -> [u8; 16] {
        let v = self.sim.get_u128(self.dout).expect("dout is defined");
        u128_to_block(v)
    }

    /// Simulated time in clock units.
    #[must_use]
    pub fn time(&self) -> u64 {
        self.sim.time()
    }

    /// Access to the underlying simulator (waveform probes, statistics).
    #[must_use]
    pub fn simulator(&self) -> &Simulator {
        &self.sim
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::core::{DecryptCore, EncDecCore, EncryptCore};
    use rijndael::vectors::{FIPS197_C1, RIJNDAEL_SPEC_B};

    #[test]
    fn rtl_encrypt_matches_vector() {
        let mut bench = IpBench::new(EncryptCore::new(), 7);
        let mut key = [0u8; 16];
        key.copy_from_slice(FIPS197_C1.key);
        bench.write_key(&key);
        bench.write_data(&FIPS197_C1.plaintext, false);
        // The write_data edge loads the block; 50 processing edges follow.
        bench.run_cycles(50);
        assert!(bench.data_ok());
        assert_eq!(bench.dout(), FIPS197_C1.ciphertext);
    }

    #[test]
    fn rtl_decrypt_matches_vector() {
        let mut bench = IpBench::new(DecryptCore::new(), 7);
        let mut key = [0u8; 16];
        key.copy_from_slice(RIJNDAEL_SPEC_B.key);
        bench.write_key(&key);
        bench.write_data(&RIJNDAEL_SPEC_B.ciphertext, true);
        bench.run_cycles(50);
        assert!(bench.data_ok());
        assert_eq!(bench.dout(), RIJNDAEL_SPEC_B.plaintext);
    }

    #[test]
    fn rtl_encdec_roundtrip_with_vcd() {
        let mut bench = IpBench::new(EncDecCore::new(), 5); // Cyclone: 10 ns
        bench.record_vcd("encdec_tb");
        bench.write_key(&[0x42u8; 16]);
        let pt = [0x99u8; 16];
        bench.write_data(&pt, false);
        bench.run_cycles(50);
        let ct = bench.dout();
        bench.write_data(&ct, true);
        bench.run_cycles(50);
        assert_eq!(bench.dout(), pt);

        let vcd = bench.vcd_text().expect("vcd attached");
        assert!(vcd.contains("$var wire 128"));
        assert!(vcd.contains("data_ok"));
    }

    #[test]
    fn latency_in_wall_clock_time_matches_table2() {
        // Acex1K encrypt: 14 ns clock → 700 ns latency (Table 2).
        let mut bench = IpBench::new(EncryptCore::new(), 7);
        bench.write_key(&[0u8; 16]);
        bench.write_data(&[0u8; 16], false);
        // Count full clock periods from the load edge to data_ok.
        let mut periods = 0u64;
        while !bench.data_ok() {
            bench.run_cycles(1);
            periods += 1;
            assert!(periods <= 60, "never finished");
        }
        assert_eq!(periods, 50, "latency is 50 clock periods");
        assert_eq!(periods * 14, 700, "Table 2: 700 ns at a 14 ns clock");
    }

    #[test]
    fn dout_is_x_before_first_result() {
        let bench = IpBench::new(EncryptCore::new(), 7);
        assert!(!bench.data_ok());
        assert_eq!(bench.simulator().get_u128(bench.dout), None);
    }
}

//! Structural (gate-level) netlist generation for the IP variants.
//!
//! This is the "VHDL elaboration" of the reproduction: the same
//! architecture the cycle-accurate cores model is emitted as a flat gate
//! network — registers, the 4-S-box `ByteSub` slice with its column
//! select/writeback muxes, the 128-bit `ShiftRow` wiring, the `MixColumn`
//! XOR planes, the on-the-fly `KStran` key path and the one-hot control
//! rings — ready for the [`netlist`] mapper and the [`fpga`] flow.
//!
//! S-boxes are emitted either as asynchronous ROM macros
//! ([`RomStyle::Macro`], the ACEX/FLEX/APEX case) or as shared
//! multiplexer-tree logic ([`RomStyle::LogicCells`], the Cyclone case —
//! the paper's "the memory was implemented using LCs").
//!
//! S-box budget (matching the paper's Table 2 memory column):
//!
//! * encrypt-only: 4 `ByteSub` + 4 `KStran` = 8 ROMs = 16 Kibit;
//! * decrypt-only: 4 `IByteSub` + 4 `KStran` = 8 ROMs = 16 Kibit — the
//!   `KStran` bank is time-shared between the setup-time forward key walk
//!   and the operation-time backward stepping;
//! * combined: both banks = 16 ROMs = 32 Kibit.
//!
//! Functional equivalence between these netlists and the cycle-accurate
//! cores is established in the workspace integration tests by clocking
//! both models through full encryptions.

use gf256::{INV_SBOX, SBOX};
use netlist::ir::{NetId, Netlist};

use crate::core::CoreVariant;

/// How S-boxes are realised on the target device.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RomStyle {
    /// 256×8 asynchronous embedded-memory macros (EABs on ACEX 1K).
    Macro,
    /// Shared Shannon multiplexer trees in logic cells (Cyclone).
    LogicCells,
}

/// A 16-wire-byte word; each byte is 8 nets, LSB first. Byte 0 is the
/// first byte on the bus (`din[127:120]` in VHDL terms).
type Bytes = Vec<[NetId; 8]>;
/// Four bytes (one 32-bit column / word).
type Quad = [[NetId; 8]; 4];

struct Builder<'a> {
    nl: &'a mut Netlist,
    rom_style: RomStyle,
}

impl Builder<'_> {
    fn sbox(&mut self, addr: &[NetId; 8], inverse: bool) -> [NetId; 8] {
        let table = if inverse { &INV_SBOX } else { &SBOX };
        let out = match self.rom_style {
            RomStyle::Macro => self.nl.rom256x8(addr, table),
            RomStyle::LogicCells => self.nl.rom256x8_lut(addr, table),
        };
        out.try_into().expect("rom emits 8 bits")
    }

    /// `xtime` (multiplication by {02}) as three XOR gates.
    fn xtime(&mut self, x: &[NetId; 8]) -> [NetId; 8] {
        [
            x[7],
            self.nl.xor2(x[0], x[7]),
            x[1],
            self.nl.xor2(x[2], x[7]),
            self.nl.xor2(x[3], x[7]),
            x[4],
            x[5],
            x[6],
        ]
    }

    fn xor_bytes(&mut self, terms: &[[NetId; 8]]) -> [NetId; 8] {
        let words: Vec<Vec<NetId>> = terms.iter().map(|t| t.to_vec()).collect();
        self.nl
            .xor_many(&words)
            .try_into()
            .expect("byte stays 8 bits")
    }

    /// `MixColumn` on one column of 4 bytes.
    fn mix_column(&mut self, col: &Quad) -> Quad {
        let xt: Vec<[NetId; 8]> = col.iter().map(|b| self.xtime(b)).collect();
        [
            self.xor_bytes(&[xt[0], xt[1], col[1], col[2], col[3]]),
            self.xor_bytes(&[col[0], xt[1], xt[2], col[2], col[3]]),
            self.xor_bytes(&[col[0], col[1], xt[2], xt[3], col[3]]),
            self.xor_bytes(&[xt[0], col[0], col[1], col[2], xt[3]]),
        ]
    }

    /// The `xtime²` pre-correction `P` with `IMixColumn = MixColumn ∘ P`:
    /// per column, `u = {04}·(a0 + a2)`, `v = {04}·(a1 + a3)`, then
    /// `a0 += u, a2 += u, a1 += v, a3 += v`. Lets the decrypt path reuse
    /// the forward `MixColumn` plane (shared in the combined device).
    fn pre_inv_mix(&mut self, state: &Bytes) -> Bytes {
        let mut out = Vec::with_capacity(16);
        for c in 0..4 {
            let a0 = state[4 * c];
            let a1 = state[4 * c + 1];
            let a2 = state[4 * c + 2];
            let a3 = state[4 * c + 3];
            let e02 = self.xor_bytes(&[a0, a2]);
            let e13 = self.xor_bytes(&[a1, a3]);
            let t = self.xtime(&e02);
            let u = self.xtime(&t);
            let t = self.xtime(&e13);
            let v = self.xtime(&t);
            out.push(self.xor_bytes(&[a0, u]));
            out.push(self.xor_bytes(&[a1, v]));
            out.push(self.xor_bytes(&[a2, u]));
            out.push(self.xor_bytes(&[a3, v]));
        }
        out
    }

    fn mix_columns(&mut self, state: &Bytes) -> Bytes {
        let mut out = Vec::with_capacity(16);
        for c in 0..4 {
            let col: Quad = [
                state[4 * c],
                state[4 * c + 1],
                state[4 * c + 2],
                state[4 * c + 3],
            ];
            out.extend(self.mix_column(&col));
        }
        out
    }

    fn xor_words(&mut self, a: &Bytes, b: &Bytes) -> Bytes {
        a.iter()
            .zip(b)
            .map(|(x, y)| self.xor_bytes(&[*x, *y]))
            .collect()
    }

    fn mux_bytes(&mut self, sel: NetId, a: &Bytes, b: &Bytes) -> Bytes {
        a.iter()
            .zip(b)
            .map(|(x, y)| core::array::from_fn(|i| self.nl.mux2(sel, x[i], y[i])))
            .collect()
    }

    fn mux_quad(&mut self, sel: NetId, a: &Quad, b: &Quad) -> Quad {
        core::array::from_fn(|k| core::array::from_fn(|i| self.nl.mux2(sel, a[k][i], b[k][i])))
    }

    /// One-hot AND-OR selection of one of four 32-bit columns.
    fn select_column(&mut self, state: &Bytes, onehot: &[NetId; 4]) -> Quad {
        core::array::from_fn(|byte_in_col| {
            core::array::from_fn(|bit| {
                let mut acc: Option<NetId> = None;
                for c in 0..4 {
                    let term = self.nl.and2(onehot[c], state[4 * c + byte_in_col][bit]);
                    acc = Some(match acc {
                        None => term,
                        Some(prev) => self.nl.or2(prev, term),
                    });
                }
                acc.expect("four terms")
            })
        })
    }

    /// One `KStran` S-box bank: rotate the input word, substitute all four
    /// bytes (4 forward S-boxes), XOR `rcon` into the top byte.
    fn kstran_bank(&mut self, word: &Quad, rcon: &[NetId; 8]) -> Quad {
        let rot = [word[1], word[2], word[3], word[0]];
        let mut ks: Quad = core::array::from_fn(|i| self.sbox(&rot[i], false));
        ks[0] = self.xor_bytes(&[ks[0], *rcon]);
        ks
    }

    /// Forward chaining: `v0 = u0 ^ ks`, `v_w = u_w ^ v_{w-1}`.
    fn chain_forward(&mut self, key: &Bytes, ks: &Quad) -> Bytes {
        let mut out: Bytes = Vec::with_capacity(16);
        for i in 0..4 {
            out.push(self.xor_bytes(&[key[i], ks[i]]));
        }
        for w in 1..4 {
            for i in 0..4 {
                let prev = out[4 * (w - 1) + i];
                let cur = key[4 * w + i];
                out.push(self.xor_bytes(&[cur, prev]));
            }
        }
        out
    }

    /// Builds the rcon byte from a one-hot ring: bit `j` ORs the stages
    /// whose constant has bit `j` set.
    fn rcon_from_onehot(&mut self, onehot: &[NetId], constants: &[u8]) -> [NetId; 8] {
        assert_eq!(onehot.len(), constants.len());
        let zero = self.nl.constant(false);
        core::array::from_fn(|j| {
            let mut acc: Option<NetId> = None;
            for (k, &c) in constants.iter().enumerate() {
                if (c >> j) & 1 == 1 {
                    acc = Some(match acc {
                        None => onehot[k],
                        Some(prev) => self.nl.or2(prev, onehot[k]),
                    });
                }
            }
            acc.unwrap_or(zero)
        })
    }

    fn mux_rcon(&mut self, sel: NetId, a: &[NetId; 8], b: &[NetId; 8]) -> [NetId; 8] {
        core::array::from_fn(|j| self.nl.mux2(sel, a[j], b[j]))
    }
}

/// `ShiftRow` as pure wiring on wire-byte indices.
fn shift_rows_wires(state: &Bytes) -> Bytes {
    (0..16)
        .map(|i| {
            let (c, r) = (i / 4, i % 4);
            state[4 * ((c + r) % 4) + r]
        })
        .collect()
}

/// `IShiftRow` wiring.
fn inv_shift_rows_wires(state: &Bytes) -> Bytes {
    (0..16)
        .map(|i| {
            let (c, r) = (i / 4, i % 4);
            state[4 * ((c + 4 - r) % 4) + r]
        })
        .collect()
}

fn bus_to_bytes(bus: &[NetId]) -> Bytes {
    assert_eq!(bus.len(), 128);
    // Bus bit i = u128 bit i (LSB first); wire byte k occupies bits
    // (15-k)*8 .. +8, LSB first within the byte.
    (0..16)
        .map(|k| core::array::from_fn(|j| bus[(15 - k) * 8 + j]))
        .collect()
}

fn bytes_to_bus(bytes: &Bytes) -> Vec<NetId> {
    let mut bus = vec![NetId(0); 128];
    for (k, byte) in bytes.iter().enumerate() {
        for (j, &n) in byte.iter().enumerate() {
            bus[(15 - k) * 8 + j] = n;
        }
    }
    bus
}

fn key_quad(key: &Bytes, word: usize) -> Quad {
    [
        key[4 * word],
        key[4 * word + 1],
        key[4 * word + 2],
        key[4 * word + 3],
    ]
}

/// Internal signal taps for simulation observability (the logic-analyzer
/// probes of the reproduction): these are *nets inside the netlist*, not
/// ports, so they do not affect pin counts or fitting.
#[derive(Debug, Clone, Copy)]
pub struct CoreProbes {
    /// The `busy` state flip-flop (q).
    pub busy: NetId,
    /// The `Data_In` valid flip-flop (q).
    pub data_in_valid: NetId,
    /// Combinational strobe: high during the edge that delivers a result
    /// to the `Out` register.
    pub finishing: NetId,
}

/// Emits the complete gate-level netlist for one core variant.
///
/// The interface matches the paper's Table 1: `setup`, `wr_data`,
/// `wr_key`, `din[128]`, `enc_dec` (combined variant only), `data_ok`,
/// `dout[128]`; the clock is implicit (single clock domain).
///
/// # Examples
///
/// ```
/// use aes_ip::core::CoreVariant;
/// use aes_ip::netlist_gen::{build_core_netlist, RomStyle};
///
/// let nl = build_core_netlist(CoreVariant::Encrypt, RomStyle::Macro);
/// assert_eq!(nl.stats().roms, 8); // 4 ByteSub + 4 KStran S-boxes
/// // 131 input bits + 129 output bits (+1 clock pin added by the fitter).
/// assert_eq!(nl.inputs().len() + nl.outputs().len(), 260);
/// ```
#[must_use]
pub fn build_core_netlist(variant: CoreVariant, rom_style: RomStyle) -> Netlist {
    build_core_netlist_probed(variant, rom_style).0
}

/// Like [`build_core_netlist`], additionally returning the internal
/// [`CoreProbes`] the gate-level simulator uses for protocol
/// introspection.
#[must_use]
pub fn build_core_netlist_probed(
    variant: CoreVariant,
    rom_style: RomStyle,
) -> (Netlist, CoreProbes) {
    let name = format!(
        "aes128-{}-{}",
        match variant {
            CoreVariant::Encrypt => "enc",
            CoreVariant::Decrypt => "dec",
            CoreVariant::EncDec => "encdec",
        },
        match rom_style {
            RomStyle::Macro => "eab",
            RomStyle::LogicCells => "lcrom",
        }
    );
    let mut nl = Netlist::new(name);

    // ------------------------------------------------------------ ports
    let setup = nl.input("setup");
    let wr_data = nl.input("wr_data");
    let wr_key = nl.input("wr_key");
    let din_bus = nl.input_bus("din", 128);
    let enc_dec = match variant {
        CoreVariant::EncDec => Some(nl.input("enc_dec")),
        _ => None,
    };

    // -------------------------------------------------------- registers
    let state_q = nl.dff_word_uninit(128);
    let key0_q = nl.dff_word_uninit(128);
    let round_key_q = nl.dff_word_uninit(128);
    let data_in_q = nl.dff_word_uninit(128);
    let dout_q = nl.dff_word_uninit(128);
    let valid_q = nl.dff_uninit();
    let data_ok_q = nl.dff_uninit();
    let busy_q = nl.dff_uninit();
    let cycle_q = nl.dff_word_uninit(5); // one-hot c1..c5
    let round_q = nl.dff_word_uninit(10); // one-hot r1..r10
    let needs_dec = !matches!(variant, CoreVariant::Encrypt);
    let (walk_q, key_end_q, key_ready_q) = if needs_dec {
        (
            nl.dff_word_uninit(10),
            nl.dff_word_uninit(128),
            Some(nl.dff_uninit()),
        )
    } else {
        (Vec::new(), Vec::new(), None)
    };

    let mut b = Builder {
        nl: &mut nl,
        rom_style,
    };

    // ------------------------------------------------------- byte views
    let din = bus_to_bytes(&din_bus);
    let state = bus_to_bytes(&state_q);
    let key0 = bus_to_bytes(&key0_q);
    let round_key = bus_to_bytes(&round_key_q);
    let data_in = bus_to_bytes(&data_in_q);
    let key_end = if needs_dec {
        bus_to_bytes(&key_end_q)
    } else {
        Vec::new()
    };

    // ---------------------------------------------------------- control
    let op = b.nl.not(setup);
    let load_key = b.nl.and2(setup, wr_key);
    let not_load_key = b.nl.not(load_key);
    let wr_now = b.nl.and2(op, wr_data);
    let have_data = b.nl.or2(wr_now, valid_q);
    let r10c5 = b.nl.and2(round_q[9], cycle_q[4]);
    let finishing = b.nl.and2(busy_q, r10c5);
    let not_busy = b.nl.not(busy_q);
    let free = b.nl.or2(not_busy, finishing);
    let consume_base = {
        let t = b.nl.and2(op, have_data);
        b.nl.and2(t, free)
    };

    // Pending-direction latch (combined device only): the direction pin is
    // captured with the data word, as the engine model does.
    let dir_pending_eff = match (variant, enc_dec) {
        (CoreVariant::Encrypt, _) => b.nl.constant(false),
        (CoreVariant::Decrypt, _) => b.nl.constant(true),
        (CoreVariant::EncDec, Some(ed)) => {
            let pend_q = b.nl.dff_uninit();
            let d = b.nl.mux2(wr_now, pend_q, ed);
            b.nl.connect_dff(pend_q, d);
            // Effective direction of the word that would be consumed now.
            b.nl.mux2(wr_now, pend_q, ed)
        }
        _ => unreachable!(),
    };

    let consume = match key_ready_q {
        None => consume_base,
        Some(ready) => {
            // Decrypt needs the key walk done; encrypt (combined device,
            // pin low) may start immediately.
            let enc_ok = b.nl.not(dir_pending_eff);
            let ok = b.nl.or2(enc_ok, ready);
            b.nl.and2(consume_base, ok)
        }
    };
    let not_consume = b.nl.not(consume);

    // busy' = !load_key & (consume | busy & !finishing)
    let not_finishing = b.nl.not(finishing);
    let keep_busy = b.nl.and2(busy_q, not_finishing);
    let busy_d0 = b.nl.or2(consume, keep_busy);
    let busy_d = b.nl.and2(busy_d0, not_load_key);
    b.nl.connect_dff(busy_q, busy_d);

    // valid' = !load_key & !consume & (wr_now | valid)
    let valid_d0 = b.nl.and2(not_consume, have_data);
    let valid_d = b.nl.and2(valid_d0, not_load_key);
    b.nl.connect_dff(valid_q, valid_d);

    // Cycle ring.
    {
        let not_r10 = b.nl.not(round_q[9]);
        let wrap = b.nl.and2(cycle_q[4], not_r10);
        let wrap_busy = b.nl.and2(busy_q, wrap);
        let c1_d0 = b.nl.or2(consume, wrap_busy);
        let c1_d = b.nl.and2(c1_d0, not_load_key);
        b.nl.connect_dff(cycle_q[0], c1_d);
        for k in 0..4 {
            let adv = b.nl.and2(busy_q, cycle_q[k]);
            let d = b.nl.and2(adv, not_load_key);
            b.nl.connect_dff(cycle_q[k + 1], d);
        }
    }

    // Round ring.
    {
        let not_c5 = b.nl.not(cycle_q[4]);
        let hold1 = b.nl.and2(round_q[0], not_c5);
        let hold1b = b.nl.and2(busy_q, hold1);
        let r1_d0 = b.nl.or2(consume, hold1b);
        let r1_d = b.nl.and2(r1_d0, not_load_key);
        b.nl.connect_dff(round_q[0], r1_d);
        for k in 0..9 {
            let adv = b.nl.and2(round_q[k], cycle_q[4]);
            let hold = b.nl.and2(round_q[k + 1], not_c5);
            let either = b.nl.or2(adv, hold);
            let gated = b.nl.and2(busy_q, either);
            let d = b.nl.and2(gated, not_load_key);
            b.nl.connect_dff(round_q[k + 1], d);
        }
    }

    // In-flight direction (combined device): latched at consume.
    let dir_dec = match variant {
        CoreVariant::Encrypt => b.nl.constant(false),
        CoreVariant::Decrypt => b.nl.constant(true),
        CoreVariant::EncDec => {
            let dir_q = b.nl.dff_uninit();
            let d = b.nl.mux2(consume, dir_q, dir_pending_eff);
            b.nl.connect_dff(dir_q, d);
            // On the consume edge the freshly selected direction applies.
            b.nl.mux2(consume, dir_q, dir_pending_eff)
        }
    };

    // ------------------------------------------------------ ByteSub slice
    let sub_onehot: [NetId; 4] = core::array::from_fn(|k| b.nl.and2(busy_q, cycle_q[k]));
    let enc_like = matches!(variant, CoreVariant::Encrypt | CoreVariant::EncDec);
    let dec_like = matches!(variant, CoreVariant::Decrypt | CoreVariant::EncDec);

    // Round constants.
    let rcon_fwd_consts: Vec<u8> = (1..=10u32)
        .map(|r| gf256::Gf256::new(2).pow(r - 1).value())
        .collect();
    let rcon_bwd_consts: Vec<u8> = (1..=10u32)
        .map(|blk| gf256::Gf256::new(2).pow(10 - blk).value())
        .collect();

    // ------------------------------------------------- decrypt key logic
    // (shared KStran bank between the setup walk and the backward step)
    struct DecKey {
        walking: NetId,
        last_step: NetId,
        fwd_next: Bytes,
        bwd_prev: Bytes,
    }
    let dec_key = needs_dec.then(|| {
        // walk ring: w1' = load_key; w_{k+1}' = setup & w_k.
        b.nl.connect_dff(walk_q[0], load_key);
        for k in 0..9 {
            let d0 = b.nl.and2(setup, walk_q[k]);
            let d = b.nl.and2(d0, not_load_key);
            b.nl.connect_dff(walk_q[k + 1], d);
        }
        let mut walking = walk_q[0];
        for &w in &walk_q[1..] {
            walking = b.nl.or2(walking, w);
        }
        let walking = b.nl.and2(setup, walking);
        let last_step = b.nl.and2(setup, walk_q[9]);

        let ready = key_ready_q.expect("decrypt-capable variant");
        let ready_hold = b.nl.or2(ready, last_step);
        let ready_d = b.nl.and2(ready_hold, not_load_key);
        b.nl.connect_dff(ready, ready_d);

        // Shared bank input: forward uses u3 = round_key word 3; backward
        // first reconstructs u3 = v3 ^ v2.
        let v3 = key_quad(&round_key, 3);
        let v2 = key_quad(&round_key, 2);
        let u3_bwd: Quad = core::array::from_fn(|i| b.xor_bytes(&[v3[i], v2[i]]));
        let bank_in = b.mux_quad(walking, &u3_bwd, &v3);

        let walk_rcon = b.rcon_from_onehot(&walk_q, &rcon_fwd_consts);
        let op_rcon = b.rcon_from_onehot(&round_q, &rcon_bwd_consts);
        let rcon = b.mux_rcon(walking, &op_rcon, &walk_rcon);

        let ks = b.kstran_bank(&bank_in, &rcon);

        // Forward: chain from round_key.
        let fwd_next = b.chain_forward(&round_key, &ks);
        // Backward: u_w = v_w ^ v_{w-1} for w = 1..3; u0 = v0 ^ ks.
        let mut bwd: Bytes = vec![[NetId(0); 8]; 16];
        for i in 0..4 {
            bwd[i] = b.xor_bytes(&[round_key[i], ks[i]]);
        }
        for w in 1..4 {
            for i in 0..4 {
                bwd[4 * w + i] = b.xor_bytes(&[round_key[4 * w + i], round_key[4 * (w - 1) + i]]);
            }
        }
        DecKey {
            walking,
            last_step,
            fwd_next,
            bwd_prev: bwd,
        }
    });

    // key_end latch (decrypt): capture the walk output at the last step.
    if let Some(dk) = &dec_key {
        let fwd_bus = bytes_to_bus(&dk.fwd_next);
        for i in 0..128 {
            let d = b.nl.mux2(dk.last_step, key_end_q[i], fwd_bus[i]);
            b.nl.connect_dff(key_end_q[i], d);
        }
    }

    // ------------------------------------------------- encrypt datapath
    // (substitution slice, ShiftRow wiring and the forward key step; the
    // MixColumn plane is built once below, shared with the decrypt path
    // in the combined device)
    let enc_parts = enc_like.then(|| {
        let col_in = b.select_column(&state, &sub_onehot);
        let col_sub: Quad = core::array::from_fn(|i| b.sbox(&col_in[i], false));
        let shifted = shift_rows_wires(&state);

        // The encrypt KStran bank (dedicated, 4 S-boxes).
        let rcon = b.rcon_from_onehot(&round_q, &rcon_fwd_consts);
        let u3 = key_quad(&round_key, 3);
        let ks = b.kstran_bank(&u3, &rcon);
        let next_key = b.chain_forward(&round_key, &ks);
        (col_sub, shifted, next_key)
    });

    // ------------------------------------------------- decrypt datapath
    let dec_parts = dec_like.then(|| {
        let ishifted = inv_shift_rows_wires(&state);
        // Cycle 1 always substitutes column 0 of the IShiftRow view
        // (fixed wiring) — the plain column 0 is never read — so the
        // shifted view slots straight into the one-hot column select,
        // with no extra mux level on the S-box address path.
        let sel_view: Bytes = (0..16)
            .map(|i| if i / 4 == 0 { ishifted[i] } else { state[i] })
            .collect();
        let col_in = b.select_column(&sel_view, &sub_onehot);
        let col_sub: Quad = core::array::from_fn(|i| b.sbox(&col_in[i], true));

        // AddKey first, then the xtime² pre-correction that turns the
        // shared forward MixColumn plane into IMixColumn.
        let keyed = b.xor_words(&state, &round_key);
        let p_keyed = b.pre_inv_mix(&keyed);
        (col_sub, keyed, p_keyed, ishifted)
    });

    // ------------------------------------- shared MixColumn commit plane
    // One MixColumn network serves both directions: the encrypt path
    // feeds it ShiftRow(state), the decrypt path P(state + key) (since
    // IMixColumn = MixColumn ∘ P). The final round bypasses it.
    let not_last = b.nl.not(round_q[9]);
    let mc_in: Bytes = match (enc_parts.as_ref(), dec_parts.as_ref()) {
        (Some((_, shifted, _)), None) => shifted.clone(),
        (None, Some((_, _, p_keyed, _))) => p_keyed.clone(),
        (Some((_, shifted, _)), Some((_, _, p_keyed, _))) => b.mux_bytes(dir_dec, shifted, p_keyed),
        (None, None) => unreachable!("variant has a datapath"),
    };
    let mixed = b.mix_columns(&mc_in);
    let committed_enc = enc_parts.as_ref().map(|(_, shifted, _)| {
        let linear: Bytes = (0..16)
            .map(|i| -> [NetId; 8] {
                core::array::from_fn(|j| b.nl.mux2(not_last, shifted[i][j], mixed[i][j]))
            })
            .collect();
        b.xor_words(&linear, &round_key)
    });
    let committed_dec = dec_parts.as_ref().map(|(_, keyed, _, _)| {
        (0..16)
            .map(|i| -> [NetId; 8] {
                core::array::from_fn(|j| b.nl.mux2(not_last, keyed[i][j], mixed[i][j]))
            })
            .collect::<Bytes>()
    });

    // -------------------------------------------------- state register D
    let din_eff = b.mux_bytes(wr_now, &data_in, &din);
    let init_key: Bytes = match variant {
        CoreVariant::Encrypt => key0.clone(),
        CoreVariant::Decrypt => key_end.clone(),
        CoreVariant::EncDec => b.mux_bytes(dir_dec, &key0, &key_end),
    };
    let loaded = b.xor_words(&din_eff, &init_key);

    let commit_now = b.nl.and2(busy_q, cycle_q[4]);
    let c1_now = b.nl.and2(busy_q, cycle_q[0]);
    let state_d_bytes: Bytes = (0..16)
        .map(|i| -> [NetId; 8] {
            let col = i / 4;
            core::array::from_fn(|j| {
                let hold = state[i][j];

                let enc_val = enc_parts.as_ref().zip(committed_enc.as_ref()).map(
                    |((col_sub, _, _), committed)| {
                        let subbed = b.nl.mux2(sub_onehot[col], hold, col_sub[i % 4][j]);
                        b.nl.mux2(commit_now, subbed, committed[i][j])
                    },
                );
                let dec_val = dec_parts.as_ref().zip(committed_dec.as_ref()).map(
                    |((col_sub, _, _, ishift), committed)| {
                        // Cycle 1 writes the IShiftRow view everywhere,
                        // with column 0 additionally substituted.
                        let c1_val = if col == 0 {
                            col_sub[i % 4][j]
                        } else {
                            ishift[i][j]
                        };
                        let v = b.nl.mux2(c1_now, hold, c1_val);
                        let v = if col > 0 {
                            b.nl.mux2(sub_onehot[col], v, col_sub[i % 4][j])
                        } else {
                            v
                        };
                        b.nl.mux2(commit_now, v, committed[i][j])
                    },
                );

                let active = match (enc_val, dec_val) {
                    (Some(e), None) => e,
                    (None, Some(d)) => d,
                    (Some(e), Some(d)) => b.nl.mux2(dir_dec, e, d),
                    (None, None) => unreachable!("variant has a datapath"),
                };
                b.nl.mux2(consume, active, loaded[i][j])
            })
        })
        .collect();
    let state_d = bytes_to_bus(&state_d_bytes);
    b.nl.connect_dff_word(&state_q, &state_d);

    // ----------------------------------------------------- key0 register
    for i in 0..128 {
        let d = b.nl.mux2(load_key, key0_q[i], din_bus[i]);
        b.nl.connect_dff(key0_q[i], d);
    }

    // ------------------------------------------------ round_key register
    {
        let step_now = b.nl.and2(busy_q, cycle_q[0]);
        let stepped: Bytes = match (enc_parts.as_ref(), dec_key.as_ref()) {
            (Some((_, _, nk)), None) => nk.clone(),
            (None, Some(dk)) => dk.bwd_prev.clone(),
            (Some((_, _, nk)), Some(dk)) => b.mux_bytes(dir_dec, nk, &dk.bwd_prev),
            (None, None) => unreachable!(),
        };
        let stepped_bus = bytes_to_bus(&stepped);
        let init_bus = bytes_to_bus(&init_key);
        let walk_bus = dec_key.as_ref().map(|dk| bytes_to_bus(&dk.fwd_next));

        for i in 0..128 {
            let mut d = b.nl.mux2(step_now, round_key_q[i], stepped_bus[i]);
            d = b.nl.mux2(consume, d, init_bus[i]);
            if let (Some(dk), Some(wb)) = (dec_key.as_ref(), walk_bus.as_ref()) {
                d = b.nl.mux2(dk.walking, d, wb[i]);
            }
            let d = b.nl.mux2(load_key, d, din_bus[i]);
            b.nl.connect_dff(round_key_q[i], d);
        }
    }

    // ----------------------------------------------- data_in register
    for i in 0..128 {
        let d = b.nl.mux2(wr_now, data_in_q[i], din_bus[i]);
        b.nl.connect_dff(data_in_q[i], d);
    }

    // ------------------------------------------------- output register
    {
        let result: Bytes = match (committed_enc.as_ref(), committed_dec.as_ref()) {
            (Some(e), None) => e.clone(),
            (None, Some(d)) => d.clone(),
            (Some(e), Some(d)) => b.mux_bytes(dir_dec, e, d),
            (None, None) => unreachable!(),
        };
        let result_bus = bytes_to_bus(&result);
        for i in 0..128 {
            let d = b.nl.mux2(finishing, dout_q[i], result_bus[i]);
            b.nl.connect_dff(dout_q[i], d);
        }
        let ok_hold = b.nl.or2(data_ok_q, finishing);
        let ok_d = b.nl.and2(ok_hold, not_load_key);
        b.nl.connect_dff(data_ok_q, ok_d);
    }

    // ------------------------------------------------------------ ports
    nl.output("data_ok", data_ok_q);
    nl.output_bus("dout", &dout_q);
    nl.validate();
    (
        nl,
        CoreProbes {
            busy: busy_q,
            data_in_valid: valid_q,
            finishing,
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pin_counts_match_table2() {
        // 261 pins for single-function devices, 262 for the combined one
        // (the +1 clock pin is added by the fitter).
        for (variant, expect) in [
            (CoreVariant::Encrypt, 260),
            (CoreVariant::Decrypt, 260),
            (CoreVariant::EncDec, 261),
        ] {
            let nl = build_core_netlist(variant, RomStyle::Macro);
            assert_eq!(nl.inputs().len() + nl.outputs().len(), expect, "{variant}");
        }
    }

    #[test]
    fn sbox_rom_counts_match_table2_memory() {
        // 8 ROMs = 16384 bits (enc, dec), 16 ROMs = 32768 bits (both).
        assert_eq!(
            build_core_netlist(CoreVariant::Encrypt, RomStyle::Macro)
                .stats()
                .roms,
            8
        );
        assert_eq!(
            build_core_netlist(CoreVariant::Decrypt, RomStyle::Macro)
                .stats()
                .roms,
            8
        );
        assert_eq!(
            build_core_netlist(CoreVariant::EncDec, RomStyle::Macro)
                .stats()
                .roms,
            16
        );
    }

    #[test]
    fn logic_cell_style_has_no_roms() {
        let nl = build_core_netlist(CoreVariant::Encrypt, RomStyle::LogicCells);
        assert_eq!(nl.stats().roms, 0);
        assert!(nl.stats().gates > 1000);
    }

    #[test]
    fn netlists_validate_and_have_plausible_populations() {
        for variant in [
            CoreVariant::Encrypt,
            CoreVariant::Decrypt,
            CoreVariant::EncDec,
        ] {
            let nl = build_core_netlist(variant, RomStyle::Macro);
            nl.validate();
            let st = nl.stats();
            assert!(st.dffs >= 640, "{variant}: {} FFs", st.dffs);
            assert!(st.gates >= 1000, "{variant}: {} gates", st.gates);
        }
    }
}

//! Host-side bus driver for the IP (paper Figures 8–9).
//!
//! [`IpDriver`] plays the bus master: it wiggles `setup`/`wr_key`/`wr_data`
//! with the right timing, counts clock cycles, and exposes both a simple
//! blocking API and a pipelined streaming API that exploits the decoupled
//! `Data_In`/`Out` registers (a new block is written while the previous one
//! is still being processed — the overlap the paper's §4 highlights).
//!
//! [`HardwareAes`] adapts a driver to the [`rijndael::BlockCipher`] trait
//! so the software block-mode implementations (CBC, CTR, ...) run
//! unmodified over the hardware model.

use std::cell::RefCell;
use std::fmt;

use rijndael::BlockCipher;

use crate::core::{CoreInputs, CoreOutputs, CycleCore, Direction};
use crate::datapath::{block_to_u128, u128_to_block};

/// A cycle-counting bus master driving one core.
///
/// # Examples
///
/// ```
/// use aes_ip::bus::IpDriver;
/// use aes_ip::core::{Direction, EncryptCore};
///
/// let mut drv = IpDriver::new(EncryptCore::new());
/// drv.write_key(&[0u8; 16]);
/// let ct = drv.process_block(&[0u8; 16], Direction::Encrypt);
/// assert_eq!(ct[0], 0x66); // AES-128 zero vector
/// // 1 key edge + the load edge + the 50-cycle latency.
/// assert_eq!(drv.cycles(), 1 + 1 + 50);
/// ```
#[derive(Debug, Clone)]
pub struct IpDriver<C> {
    core: C,
    cycles: u64,
}

impl<C: CycleCore> IpDriver<C> {
    /// Wraps a core with a fresh cycle counter.
    #[must_use]
    pub fn new(core: C) -> Self {
        IpDriver { core, cycles: 0 }
    }

    /// Total rising edges issued so far.
    #[inline]
    #[must_use]
    pub fn cycles(&self) -> u64 {
        self.cycles
    }

    /// Immutable access to the wrapped core.
    #[inline]
    #[must_use]
    pub fn core(&self) -> &C {
        &self.core
    }

    /// Consumes the driver and returns the core.
    #[must_use]
    pub fn into_inner(self) -> C {
        self.core
    }

    /// Issues one rising edge.
    pub fn clock(&mut self, inputs: &CoreInputs) -> CoreOutputs {
        self.cycles += 1;
        self.core.rising_edge(inputs)
    }

    /// Idles the core for `n` cycles.
    pub fn idle(&mut self, n: u64) {
        for _ in 0..n {
            self.clock(&CoreInputs::default());
        }
    }

    /// Loads a cipher key: one `setup`+`wr_key` edge followed by the
    /// key-setup walk the core variant requires (10 extra `setup` edges
    /// for decrypt-capable devices).
    pub fn write_key(&mut self, key: &[u8; 16]) {
        self.clock(&CoreInputs {
            setup: true,
            wr_key: true,
            din: block_to_u128(key),
            ..Default::default()
        });
        for _ in 0..self.core.key_setup_cycles() {
            self.clock(&CoreInputs {
                setup: true,
                ..Default::default()
            });
        }
    }

    /// Processes one block and blocks until `data_ok`.
    ///
    /// # Panics
    ///
    /// Panics if the core fails to deliver a result within 16× its rated
    /// latency (a wedged model).
    pub fn process_block(&mut self, block: &[u8; 16], dir: Direction) -> [u8; 16] {
        let before = self.core.results_count();
        let mut out = self.clock(&CoreInputs {
            wr_data: true,
            din: block_to_u128(block),
            enc_dec: dir,
            ..Default::default()
        });
        let budget = 16 * self.core.latency_cycles().max(1);
        let mut waited = 0;
        while self.core.results_count() == before {
            out = self.clock(&CoreInputs {
                enc_dec: dir,
                ..Default::default()
            });
            waited += 1;
            assert!(
                waited <= budget,
                "core wedged: no result after {waited} cycles"
            );
        }
        u128_to_block(out.dout)
    }

    /// Processes a stream of blocks, pipelined: the next block is written
    /// while the current one is in flight, sustaining one block per
    /// latency period (the paper's full-rate operation).
    ///
    /// Returns the processed blocks in order.
    ///
    /// # Panics
    ///
    /// Panics if the core wedges (no completion within 16× latency).
    pub fn process_stream(&mut self, blocks: &[[u8; 16]], dir: Direction) -> Vec<[u8; 16]> {
        let mut results = Vec::with_capacity(blocks.len());
        let mut next_write = 0usize;
        let mut last_results = self.core.results_count();
        let budget = 16 * self.core.latency_cycles().max(1) * (blocks.len() as u64 + 1);
        let mut spent = 0u64;

        while results.len() < blocks.len() {
            let inputs = if next_write < blocks.len() && !self.core.has_pending() {
                let din = block_to_u128(&blocks[next_write]);
                next_write += 1;
                CoreInputs {
                    wr_data: true,
                    din,
                    enc_dec: dir,
                    ..Default::default()
                }
            } else {
                CoreInputs {
                    enc_dec: dir,
                    ..Default::default()
                }
            };
            let out = self.clock(&inputs);
            let now = self.core.results_count();
            if now > last_results {
                // With a single Out register, completions arrive one at a
                // time: each block takes ≥1 cycle past the previous one.
                debug_assert_eq!(now, last_results + 1, "missed a completion");
                results.push(u128_to_block(out.dout));
                last_results = now;
            }
            spent += 1;
            assert!(spent <= budget, "stream wedged after {spent} cycles");
        }
        results
    }
}

/// Adapter running the [`rijndael::modes`] implementations over a hardware
/// core model.
///
/// # Examples
///
/// ```
/// use aes_ip::bus::HardwareAes;
/// use aes_ip::core::EncDecCore;
/// use rijndael::modes::Cbc;
///
/// let hw = HardwareAes::new(EncDecCore::new(), &[0u8; 16]);
/// let mut data = vec![0u8; 48];
/// Cbc::encrypt(&hw, &[0u8; 16], &mut data)?;
/// Cbc::decrypt(&hw, &[0u8; 16], &mut data)?;
/// assert_eq!(data, vec![0u8; 48]);
/// # Ok::<(), rijndael::modes::LengthError>(())
/// ```
pub struct HardwareAes<C> {
    driver: RefCell<IpDriver<C>>,
}

impl<C: CycleCore> HardwareAes<C> {
    /// Wraps a core and loads `key`.
    #[must_use]
    pub fn new(core: C, key: &[u8; 16]) -> Self {
        let mut driver = IpDriver::new(core);
        driver.write_key(key);
        HardwareAes {
            driver: RefCell::new(driver),
        }
    }

    /// Total clock cycles consumed so far (key setup included).
    #[must_use]
    pub fn cycles(&self) -> u64 {
        self.driver.borrow().cycles()
    }
}

impl<C: CycleCore> BlockCipher for HardwareAes<C> {
    fn block_len(&self) -> usize {
        16
    }

    /// # Panics
    ///
    /// Panics if the wrapped core cannot encrypt, or `block.len() != 16`.
    fn encrypt_in_place(&self, block: &mut [u8]) {
        let arr: [u8; 16] = block.try_into().expect("AES block is 16 bytes");
        assert!(
            self.driver.borrow().core().variant().supports_encrypt(),
            "core variant cannot encrypt"
        );
        let out = self
            .driver
            .borrow_mut()
            .process_block(&arr, Direction::Encrypt);
        block.copy_from_slice(&out);
    }

    /// # Panics
    ///
    /// Panics if the wrapped core cannot decrypt, or `block.len() != 16`.
    fn decrypt_in_place(&self, block: &mut [u8]) {
        let arr: [u8; 16] = block.try_into().expect("AES block is 16 bytes");
        assert!(
            self.driver.borrow().core().variant().supports_decrypt(),
            "core variant cannot decrypt"
        );
        let out = self
            .driver
            .borrow_mut()
            .process_block(&arr, Direction::Decrypt);
        block.copy_from_slice(&out);
    }
}

impl<C: CycleCore> fmt::Debug for HardwareAes<C> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "HardwareAes {{ variant: {}, cycles: {} }}",
            self.driver.borrow().core().variant(),
            self.cycles()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::core::{DecryptCore, EncDecCore, EncryptCore, LATENCY_CYCLES};
    use rijndael::modes::{Cbc, Ctr, Ecb};
    use rijndael::vectors::{AES128_VECTORS, FIPS197_C1};

    #[test]
    fn driver_single_block_latency_budget() {
        let mut drv = IpDriver::new(EncryptCore::new());
        let mut key = [0u8; 16];
        key.copy_from_slice(FIPS197_C1.key);
        drv.write_key(&key);
        assert_eq!(drv.cycles(), 1); // encrypt-only: no setup walk
        let ct = drv.process_block(&FIPS197_C1.plaintext, Direction::Encrypt);
        assert_eq!(ct, FIPS197_C1.ciphertext);
        // Key edge + load edge + 50 processing edges.
        assert_eq!(drv.cycles(), 1 + 1 + LATENCY_CYCLES);
    }

    #[test]
    fn decrypt_driver_includes_setup_walk() {
        let mut drv = IpDriver::new(DecryptCore::new());
        let mut key = [0u8; 16];
        key.copy_from_slice(FIPS197_C1.key);
        drv.write_key(&key);
        assert_eq!(drv.cycles(), 1 + 10);
        let pt = drv.process_block(&FIPS197_C1.ciphertext, Direction::Decrypt);
        assert_eq!(pt, FIPS197_C1.plaintext);
    }

    #[test]
    fn stream_is_pipelined_at_one_block_per_latency() {
        let mut drv = IpDriver::new(EncryptCore::new());
        drv.write_key(&[0u8; 16]);
        let start = drv.cycles();
        let blocks: Vec<[u8; 16]> = (0..8u8).map(|i| [i; 16]).collect();
        let cts = drv.process_stream(&blocks, Direction::Encrypt);
        assert_eq!(cts.len(), 8);
        // Verify each against the reference cipher.
        let aes = rijndael::Aes128::new(&[0u8; 16]);
        for (b, ct) in blocks.iter().zip(&cts) {
            assert_eq!(*ct, aes.encrypt_block(b));
        }
        let spent = drv.cycles() - start;
        // Full-rate: ~50 cycles per block, not ~50 per block plus drain.
        assert!(
            spent <= LATENCY_CYCLES * 8 + 10,
            "stream not pipelined: {spent} cycles for 8 blocks"
        );
        assert!(
            spent >= LATENCY_CYCLES * 8,
            "faster than physically possible"
        );
    }

    #[test]
    fn stream_with_identical_blocks_keeps_count() {
        // All-same plaintexts produce all-same ciphertexts; the completion
        // counter must still see every block.
        let mut drv = IpDriver::new(EncryptCore::new());
        drv.write_key(&[7u8; 16]);
        let blocks = vec![[0xABu8; 16]; 5];
        let cts = drv.process_stream(&blocks, Direction::Encrypt);
        assert_eq!(cts.len(), 5);
        assert!(cts.windows(2).all(|w| w[0] == w[1]));
    }

    #[test]
    fn hardware_aes_runs_modes() {
        let key = [0x42u8; 16];
        let hw = HardwareAes::new(EncDecCore::new(), &key);
        let sw = rijndael::Aes128::new(&key);

        let mut hw_data = vec![0x11u8; 64];
        let mut sw_data = hw_data.clone();
        Cbc::encrypt(&hw, &[9u8; 16], &mut hw_data).unwrap();
        Cbc::encrypt(&sw, &[9u8; 16], &mut sw_data).unwrap();
        assert_eq!(hw_data, sw_data);
        Cbc::decrypt(&hw, &[9u8; 16], &mut hw_data).unwrap();
        assert_eq!(hw_data, vec![0x11u8; 64]);

        let mut stream = vec![5u8; 30];
        Ctr::apply(&hw, &[0u8; 16], &mut stream);
        let mut expect = vec![5u8; 30];
        Ctr::apply(&sw, &[0u8; 16], &mut expect);
        assert_eq!(stream, expect);
    }

    #[test]
    fn hardware_aes_all_vectors_via_ecb() {
        for v in AES128_VECTORS {
            let mut key = [0u8; 16];
            key.copy_from_slice(v.key);
            let hw = HardwareAes::new(EncDecCore::new(), &key);
            let mut data = v.plaintext.to_vec();
            Ecb::encrypt(&hw, &mut data).unwrap();
            assert_eq!(&data[..], &v.ciphertext[..], "{}", v.source);
            Ecb::decrypt(&hw, &mut data).unwrap();
            assert_eq!(&data[..], &v.plaintext[..], "{}", v.source);
        }
    }

    #[test]
    #[should_panic(expected = "cannot decrypt")]
    fn encrypt_only_hardware_rejects_decrypt() {
        let hw = HardwareAes::new(EncryptCore::new(), &[0u8; 16]);
        let mut block = [0u8; 16];
        hw.decrypt_in_place(&mut block);
    }

    #[test]
    fn debug_formats() {
        let hw = HardwareAes::new(EncryptCore::new(), &[0u8; 16]);
        assert!(format!("{hw:?}").contains("variant: Encrypt"));
    }
}

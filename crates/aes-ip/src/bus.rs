//! Host-side bus driver for the IP (paper Figures 8–9).
//!
//! [`IpDriver`] plays the bus master: it wiggles `setup`/`wr_key`/`wr_data`
//! with the right timing, counts clock cycles, and exposes both a simple
//! blocking API and a pipelined streaming API that exploits the decoupled
//! `Data_In`/`Out` registers (a new block is written while the previous one
//! is still being processed — the overlap the paper's §4 highlights).
//!
//! The streaming API comes in two layers:
//!
//! * [`IpDriver::try_process_stream`] / [`IpDriver::try_process_block`] —
//!   fallible one-shot calls returning [`StreamError`] instead of aborting
//!   when the core wedges, the direction is unsupported, or the key is
//!   rewritten mid-stream;
//! * [`StreamSession`] — a resumable session created by
//!   [`IpDriver::begin_stream`] and advanced by [`StreamSession::pump`] in
//!   bounded cycle slices, so a scheduler can interleave many cores in
//!   virtual lockstep (the multi-core `engine` crate drives it this way).
//!
//! [`HardwareAes`] adapts a driver to the [`rijndael::BlockCipher`] trait
//! so the software block-mode implementations (CBC, CTR, ...) run
//! unmodified over the hardware model.

use std::cell::RefCell;
use std::fmt;

use rijndael::BlockCipher;

use crate::core::{CoreInputs, CoreOutputs, CoreVariant, CycleCore, Direction};
use crate::datapath::{block_to_u128, u128_to_block};

/// Failures of the fallible bus streaming APIs.
///
/// Every condition that used to abort the process via `assert!` is reported
/// through this type instead.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StreamError {
    /// The core variant has no datapath for the requested direction
    /// (e.g. a decrypt stream on the encrypt-only device).
    UnsupportedDirection {
        /// The device variant that rejected the stream.
        variant: CoreVariant,
        /// The direction it cannot process.
        dir: Direction,
    },
    /// A stream cannot start while the core still has a block in flight or
    /// an unconsumed word in `Data_In` (completions would be attributed to
    /// the wrong stream).
    CoreBusy,
    /// `write_key` was issued while the session was in flight; the key
    /// change invalidated the in-flight blocks, so the stream cannot
    /// produce its remaining results.
    KeyChangedMidStream {
        /// Blocks that completed before the key was rewritten.
        completed: usize,
    },
    /// The core stopped delivering completions: no progress for more than
    /// 16× the rated latency (a wedged model, e.g. a decrypt stream whose
    /// key-setup walk never ran).
    Wedged {
        /// Blocks that completed before the stall.
        completed: usize,
        /// Consecutive cycles without a write or a completion.
        idle_cycles: u64,
    },
}

impl fmt::Display for StreamError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StreamError::UnsupportedDirection { variant, dir } => {
                let verb = match dir {
                    Direction::Encrypt => "encrypt",
                    Direction::Decrypt => "decrypt",
                };
                write!(f, "core variant {variant} cannot {verb}")
            }
            StreamError::CoreBusy => {
                write!(f, "core is busy: a stream cannot start mid-flight")
            }
            StreamError::KeyChangedMidStream { completed } => write!(
                f,
                "key rewritten mid-stream after {completed} completed blocks"
            ),
            StreamError::Wedged {
                completed,
                idle_cycles,
            } => write!(
                f,
                "stream wedged: no completion for {idle_cycles} cycles \
                 ({completed} blocks completed)"
            ),
        }
    }
}

impl std::error::Error for StreamError {}

/// Outcome of one [`StreamSession::pump`] slice.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StreamProgress {
    /// All blocks of the session have completed.
    Complete,
    /// The cycle allowance was exhausted with blocks still in flight;
    /// pump again to continue.
    InProgress,
}

/// A cycle-counting bus master driving one core.
///
/// # Examples
///
/// ```
/// use aes_ip::bus::IpDriver;
/// use aes_ip::core::{Direction, EncryptCore};
///
/// let mut drv = IpDriver::new(EncryptCore::new());
/// drv.write_key(&[0u8; 16]);
/// let ct = drv.try_process_block(&[0u8; 16], Direction::Encrypt)?;
/// assert_eq!(ct[0], 0x66); // AES-128 zero vector
/// // 1 key edge + the load edge + the 50-cycle latency.
/// assert_eq!(drv.cycles(), 1 + 1 + 50);
/// # Ok::<(), aes_ip::bus::StreamError>(())
/// ```
#[derive(Debug, Clone)]
pub struct IpDriver<C> {
    core: C,
    cycles: u64,
    key_epoch: u64,
}

impl<C: CycleCore> IpDriver<C> {
    /// Wraps a core with a fresh cycle counter.
    #[must_use]
    pub fn new(core: C) -> Self {
        IpDriver {
            core,
            cycles: 0,
            key_epoch: 0,
        }
    }

    /// Total rising edges issued so far.
    #[inline]
    #[must_use]
    pub fn cycles(&self) -> u64 {
        self.cycles
    }

    /// Number of `write_key` calls issued so far. A [`StreamSession`]
    /// snapshots this at creation to detect mid-stream key changes.
    #[inline]
    #[must_use]
    pub fn key_epoch(&self) -> u64 {
        self.key_epoch
    }

    /// Immutable access to the wrapped core.
    #[inline]
    #[must_use]
    pub fn core(&self) -> &C {
        &self.core
    }

    /// Consumes the driver and returns the core.
    #[must_use]
    pub fn into_inner(self) -> C {
        self.core
    }

    /// Issues one rising edge.
    pub fn clock(&mut self, inputs: &CoreInputs) -> CoreOutputs {
        self.cycles += 1;
        self.core.rising_edge(inputs)
    }

    /// Idles the core for `n` cycles.
    pub fn idle(&mut self, n: u64) {
        for _ in 0..n {
            self.clock(&CoreInputs::default());
        }
    }

    /// Loads a cipher key: one `setup`+`wr_key` edge followed by the
    /// key-setup walk the core variant requires (10 extra `setup` edges
    /// for decrypt-capable devices). Any in-flight block is invalidated by
    /// the hardware; open [`StreamSession`]s observe the epoch change and
    /// report [`StreamError::KeyChangedMidStream`] on their next pump.
    pub fn write_key(&mut self, key: &[u8; 16]) {
        self.key_epoch += 1;
        self.clock(&CoreInputs {
            setup: true,
            wr_key: true,
            din: block_to_u128(key),
            ..Default::default()
        });
        for _ in 0..self.core.key_setup_cycles() {
            self.clock(&CoreInputs {
                setup: true,
                ..Default::default()
            });
        }
    }

    /// Opens a resumable pipelined stream over `blocks`.
    ///
    /// The session is advanced with [`StreamSession::pump`]; nothing is
    /// clocked until the first pump.
    ///
    /// # Errors
    ///
    /// * [`StreamError::UnsupportedDirection`] when the variant has no
    ///   datapath for `dir`;
    /// * [`StreamError::CoreBusy`] when a block is still in flight or
    ///   pending from earlier activity.
    pub fn begin_stream(
        &self,
        blocks: &[[u8; 16]],
        dir: Direction,
    ) -> Result<StreamSession, StreamError> {
        let variant = self.core.variant();
        let supported = match dir {
            Direction::Encrypt => variant.supports_encrypt(),
            Direction::Decrypt => variant.supports_decrypt(),
        };
        if !supported {
            return Err(StreamError::UnsupportedDirection { variant, dir });
        }
        if self.core.busy() || self.core.has_pending() {
            return Err(StreamError::CoreBusy);
        }
        Ok(StreamSession {
            blocks: blocks.to_vec(),
            dir,
            results: Vec::with_capacity(blocks.len()),
            next_write: 0,
            epoch: self.key_epoch,
            last_results: self.core.results_count(),
            idle: 0,
        })
    }

    /// Processes a stream of blocks, pipelined, reporting failures instead
    /// of aborting: the next block is written while the current one is in
    /// flight, sustaining one block per latency period (the paper's
    /// full-rate operation).
    ///
    /// # Errors
    ///
    /// Any [`StreamError`] surfaced by [`StreamSession::pump`].
    pub fn try_process_stream(
        &mut self,
        blocks: &[[u8; 16]],
        dir: Direction,
    ) -> Result<Vec<[u8; 16]>, StreamError> {
        let mut session = self.begin_stream(blocks, dir)?;
        loop {
            // Pump in bounded slices; the session's stall detector bounds
            // the total number of iterations.
            if session.pump(self, 4 * self.core.latency_cycles().max(1))?
                == StreamProgress::Complete
            {
                return Ok(session.into_results());
            }
        }
    }

    /// Processes one block, blocking until `data_ok`, reporting failures
    /// instead of aborting.
    ///
    /// # Errors
    ///
    /// Any [`StreamError`] surfaced by [`StreamSession::pump`].
    pub fn try_process_block(
        &mut self,
        block: &[u8; 16],
        dir: Direction,
    ) -> Result<[u8; 16], StreamError> {
        let results = self.try_process_stream(core::slice::from_ref(block), dir)?;
        Ok(results[0])
    }
}

/// A resumable pipelined stream over one core.
///
/// Created by [`IpDriver::begin_stream`]; advanced by [`pump`] in bounded
/// cycle slices so a scheduler can interleave several cores in virtual
/// lockstep. The session owns its input blocks and accumulates results;
/// budget exhaustion returns control to the caller instead of aborting.
///
/// [`pump`]: StreamSession::pump
///
/// # Examples
///
/// ```
/// use aes_ip::bus::{IpDriver, StreamProgress};
/// use aes_ip::core::{Direction, EncryptCore};
///
/// let mut drv = IpDriver::new(EncryptCore::new());
/// drv.write_key(&[0u8; 16]);
/// let blocks = [[0u8; 16]; 3];
/// let mut session = drv.begin_stream(&blocks, Direction::Encrypt)?;
/// while session.pump(&mut drv, 64)? == StreamProgress::InProgress {}
/// assert_eq!(session.into_results().len(), 3);
/// # Ok::<(), aes_ip::bus::StreamError>(())
/// ```
#[derive(Debug, Clone)]
pub struct StreamSession {
    blocks: Vec<[u8; 16]>,
    dir: Direction,
    results: Vec<[u8; 16]>,
    next_write: usize,
    epoch: u64,
    last_results: u64,
    idle: u64,
}

impl StreamSession {
    /// Number of input blocks in the session.
    #[must_use]
    pub fn len(&self) -> usize {
        self.blocks.len()
    }

    /// `true` when the session holds no input blocks.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.blocks.is_empty()
    }

    /// Blocks completed so far.
    #[must_use]
    pub fn completed(&self) -> usize {
        self.results.len()
    }

    /// `true` once every block has completed.
    #[must_use]
    pub fn is_complete(&self) -> bool {
        self.results.len() == self.blocks.len()
    }

    /// The results accumulated so far, in input order.
    #[must_use]
    pub fn results(&self) -> &[[u8; 16]] {
        &self.results
    }

    /// Consumes the session, returning the accumulated results.
    #[must_use]
    pub fn into_results(self) -> Vec<[u8; 16]> {
        self.results
    }

    /// Advances the stream by at most `max_cycles` rising edges on `drv`,
    /// writing the next block whenever the decoupled `Data_In` register is
    /// free and collecting completions from the `Out` register.
    ///
    /// Returns [`StreamProgress::Complete`] once every block has a result,
    /// or [`StreamProgress::InProgress`] when the allowance ran out first.
    ///
    /// # Errors
    ///
    /// * [`StreamError::KeyChangedMidStream`] when `write_key` ran on the
    ///   driver since the session (or the previous pump) observed it;
    /// * [`StreamError::Wedged`] when the core makes no progress for more
    ///   than 16× its rated latency.
    pub fn pump<C: CycleCore>(
        &mut self,
        drv: &mut IpDriver<C>,
        max_cycles: u64,
    ) -> Result<StreamProgress, StreamError> {
        if drv.key_epoch() != self.epoch {
            return Err(StreamError::KeyChangedMidStream {
                completed: self.results.len(),
            });
        }
        let stall_budget = 16 * drv.core().latency_cycles().max(1);
        let mut remaining = max_cycles;
        while !self.is_complete() {
            if remaining == 0 {
                return Ok(StreamProgress::InProgress);
            }
            remaining -= 1;

            let wrote = self.next_write < self.blocks.len() && !drv.core().has_pending();
            let inputs = if wrote {
                let din = block_to_u128(&self.blocks[self.next_write]);
                self.next_write += 1;
                CoreInputs {
                    wr_data: true,
                    din,
                    enc_dec: self.dir,
                    ..Default::default()
                }
            } else {
                CoreInputs {
                    enc_dec: self.dir,
                    ..Default::default()
                }
            };
            let out = drv.clock(&inputs);

            // With a single Out register, completions arrive one at a time.
            let now = drv.core().results_count();
            if now > self.last_results {
                self.results.push(u128_to_block(out.dout));
                self.last_results = now;
                self.idle = 0;
            } else if wrote {
                self.idle = 0;
            } else {
                self.idle += 1;
                if self.idle > stall_budget {
                    return Err(StreamError::Wedged {
                        completed: self.results.len(),
                        idle_cycles: self.idle,
                    });
                }
            }
        }
        Ok(StreamProgress::Complete)
    }
}

/// Adapter running the [`rijndael::modes`] implementations over a hardware
/// core model.
///
/// # Examples
///
/// ```
/// use aes_ip::bus::HardwareAes;
/// use aes_ip::core::EncDecCore;
/// use rijndael::modes::Cbc;
///
/// let hw = HardwareAes::new(EncDecCore::new(), &[0u8; 16]);
/// let mut data = vec![0u8; 48];
/// Cbc::encrypt(&hw, &[0u8; 16], &mut data)?;
/// Cbc::decrypt(&hw, &[0u8; 16], &mut data)?;
/// assert_eq!(data, vec![0u8; 48]);
/// # Ok::<(), rijndael::modes::LengthError>(())
/// ```
pub struct HardwareAes<C> {
    driver: RefCell<IpDriver<C>>,
}

impl<C: CycleCore> HardwareAes<C> {
    /// Wraps a core and loads `key`.
    #[must_use]
    pub fn new(core: C, key: &[u8; 16]) -> Self {
        let mut driver = IpDriver::new(core);
        driver.write_key(key);
        HardwareAes {
            driver: RefCell::new(driver),
        }
    }

    /// Total clock cycles consumed so far (key setup included).
    #[must_use]
    pub fn cycles(&self) -> u64 {
        self.driver.borrow().cycles()
    }
}

impl<C: CycleCore> BlockCipher for HardwareAes<C> {
    fn block_len(&self) -> usize {
        16
    }

    /// # Panics
    ///
    /// Panics if the wrapped core cannot encrypt, or `block.len() != 16`.
    fn encrypt_in_place(&self, block: &mut [u8]) {
        let arr: [u8; 16] = block.try_into().expect("AES block is 16 bytes");
        let out = self
            .driver
            .borrow_mut()
            .try_process_block(&arr, Direction::Encrypt)
            .unwrap_or_else(|e| panic!("{e}"));
        block.copy_from_slice(&out);
    }

    /// # Panics
    ///
    /// Panics if the wrapped core cannot decrypt, or `block.len() != 16`.
    fn decrypt_in_place(&self, block: &mut [u8]) {
        let arr: [u8; 16] = block.try_into().expect("AES block is 16 bytes");
        let out = self
            .driver
            .borrow_mut()
            .try_process_block(&arr, Direction::Decrypt)
            .unwrap_or_else(|e| panic!("{e}"));
        block.copy_from_slice(&out);
    }
}

impl<C: CycleCore> fmt::Debug for HardwareAes<C> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "HardwareAes {{ variant: {}, cycles: {} }}",
            self.driver.borrow().core().variant(),
            self.cycles()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::core::{DecryptCore, EncDecCore, EncryptCore, LATENCY_CYCLES};
    use rijndael::modes::{Cbc, Ctr, Ecb};
    use rijndael::vectors::{AES128_VECTORS, FIPS197_C1};

    #[test]
    fn driver_single_block_latency_budget() {
        let mut drv = IpDriver::new(EncryptCore::new());
        let mut key = [0u8; 16];
        key.copy_from_slice(FIPS197_C1.key);
        drv.write_key(&key);
        assert_eq!(drv.cycles(), 1); // encrypt-only: no setup walk
        let ct = drv
            .try_process_block(&FIPS197_C1.plaintext, Direction::Encrypt)
            .unwrap();
        assert_eq!(ct, FIPS197_C1.ciphertext);
        // Key edge + load edge + 50 processing edges.
        assert_eq!(drv.cycles(), 1 + 1 + LATENCY_CYCLES);
    }

    #[test]
    fn decrypt_driver_includes_setup_walk() {
        let mut drv = IpDriver::new(DecryptCore::new());
        let mut key = [0u8; 16];
        key.copy_from_slice(FIPS197_C1.key);
        drv.write_key(&key);
        assert_eq!(drv.cycles(), 1 + 10);
        let pt = drv
            .try_process_block(&FIPS197_C1.ciphertext, Direction::Decrypt)
            .unwrap();
        assert_eq!(pt, FIPS197_C1.plaintext);
    }

    #[test]
    fn stream_is_pipelined_at_one_block_per_latency() {
        let mut drv = IpDriver::new(EncryptCore::new());
        drv.write_key(&[0u8; 16]);
        let start = drv.cycles();
        let blocks: Vec<[u8; 16]> = (0..8u8).map(|i| [i; 16]).collect();
        let cts = drv.try_process_stream(&blocks, Direction::Encrypt).unwrap();
        assert_eq!(cts.len(), 8);
        // Verify each against the reference cipher.
        let aes = rijndael::Aes128::new(&[0u8; 16]);
        for (b, ct) in blocks.iter().zip(&cts) {
            assert_eq!(*ct, aes.encrypt_block(b));
        }
        let spent = drv.cycles() - start;
        // Full-rate: ~50 cycles per block, not ~50 per block plus drain.
        assert!(
            spent <= LATENCY_CYCLES * 8 + 10,
            "stream not pipelined: {spent} cycles for 8 blocks"
        );
        assert!(
            spent >= LATENCY_CYCLES * 8,
            "faster than physically possible"
        );
    }

    #[test]
    fn stream_overlap_beats_independent_blocks() {
        // The decoupled-bus claim, quantified: a pipelined stream of N
        // blocks costs ≈ load + N·50 cycles, strictly less than N
        // independent process_block calls (N·(1 + 50)).
        const N: usize = 16;
        let blocks: Vec<[u8; 16]> = (0..N as u8).map(|i| [i; 16]).collect();

        let mut streamed = IpDriver::new(EncryptCore::new());
        streamed.write_key(&[3u8; 16]);
        let start = streamed.cycles();
        let stream_out = streamed
            .try_process_stream(&blocks, Direction::Encrypt)
            .unwrap();
        let stream_cycles = streamed.cycles() - start;

        let mut blocking = IpDriver::new(EncryptCore::new());
        blocking.write_key(&[3u8; 16]);
        let start = blocking.cycles();
        let block_out: Vec<[u8; 16]> = blocks
            .iter()
            .map(|b| blocking.try_process_block(b, Direction::Encrypt).unwrap())
            .collect();
        let block_cycles = blocking.cycles() - start;

        assert_eq!(stream_out, block_out);
        // One load edge, then one block per latency period.
        assert_eq!(stream_cycles, 1 + N as u64 * LATENCY_CYCLES);
        // Each independent call pays its own load edge.
        assert_eq!(block_cycles, N as u64 * (1 + LATENCY_CYCLES));
        assert!(
            stream_cycles < block_cycles,
            "overlap must beat blocking: {stream_cycles} vs {block_cycles}"
        );
    }

    #[test]
    fn stream_with_identical_blocks_keeps_count() {
        // All-same plaintexts produce all-same ciphertexts; the completion
        // counter must still see every block.
        let mut drv = IpDriver::new(EncryptCore::new());
        drv.write_key(&[7u8; 16]);
        let blocks = vec![[0xABu8; 16]; 5];
        let cts = drv.try_process_stream(&blocks, Direction::Encrypt).unwrap();
        assert_eq!(cts.len(), 5);
        assert!(cts.windows(2).all(|w| w[0] == w[1]));
    }

    #[test]
    fn wedged_stream_reports_instead_of_aborting() {
        // Write a key to the decrypt-only device WITHOUT the setup walk:
        // the engine holds every data block until the walk finishes, so
        // the stream stalls forever. The fallible API must report it.
        let mut drv = IpDriver::new(DecryptCore::new());
        drv.clock(&CoreInputs {
            setup: true,
            wr_key: true,
            din: 7,
            ..Default::default()
        });
        let blocks = [[0u8; 16]; 2];
        let err = drv
            .try_process_stream(&blocks, Direction::Decrypt)
            .unwrap_err();
        assert!(
            matches!(err, StreamError::Wedged { completed: 0, .. }),
            "{err:?}"
        );
        assert!(err.to_string().contains("wedged"), "{err}");
    }

    #[test]
    fn key_change_mid_stream_is_reported() {
        let mut drv = IpDriver::new(EncryptCore::new());
        drv.write_key(&[1u8; 16]);
        let blocks: Vec<[u8; 16]> = (0..4u8).map(|i| [i; 16]).collect();
        let mut session = drv.begin_stream(&blocks, Direction::Encrypt).unwrap();
        // Run partway: first block completes, later ones still in flight.
        assert_eq!(
            session.pump(&mut drv, LATENCY_CYCLES + 5).unwrap(),
            StreamProgress::InProgress
        );
        assert_eq!(session.completed(), 1);
        // Rekey mid-stream: the in-flight work is invalidated.
        drv.write_key(&[2u8; 16]);
        let err = session.pump(&mut drv, 100).unwrap_err();
        assert_eq!(err, StreamError::KeyChangedMidStream { completed: 1 });
        assert!(err.to_string().contains("mid-stream"), "{err}");
    }

    #[test]
    fn unsupported_direction_is_reported_before_clocking() {
        let mut drv = IpDriver::new(EncryptCore::new());
        drv.write_key(&[0u8; 16]);
        let before = drv.cycles();
        let err = drv
            .try_process_stream(&[[0u8; 16]], Direction::Decrypt)
            .unwrap_err();
        assert!(
            matches!(err, StreamError::UnsupportedDirection { .. }),
            "{err:?}"
        );
        assert!(err.to_string().contains("cannot decrypt"), "{err}");
        assert_eq!(
            drv.cycles(),
            before,
            "no edges issued for a rejected stream"
        );
    }

    #[test]
    fn busy_core_rejects_second_stream() {
        let mut drv = IpDriver::new(EncryptCore::new());
        drv.write_key(&[0u8; 16]);
        let mut session = drv.begin_stream(&[[1u8; 16]], Direction::Encrypt).unwrap();
        assert_eq!(
            session.pump(&mut drv, 10).unwrap(),
            StreamProgress::InProgress
        );
        // The first block is mid-flight: a second stream must not start.
        assert_eq!(
            drv.begin_stream(&[[2u8; 16]], Direction::Encrypt)
                .unwrap_err(),
            StreamError::CoreBusy
        );
        // Finishing the first session frees the core.
        while session.pump(&mut drv, 50).unwrap() == StreamProgress::InProgress {}
        assert!(drv.begin_stream(&[[2u8; 16]], Direction::Encrypt).is_ok());
    }

    #[test]
    fn resumable_pump_matches_one_shot_stream() {
        let blocks: Vec<[u8; 16]> = (0..6u8).map(|i| [i.wrapping_mul(31); 16]).collect();
        let mut one_shot = IpDriver::new(EncryptCore::new());
        one_shot.write_key(&[9u8; 16]);
        let expect = one_shot
            .try_process_stream(&blocks, Direction::Encrypt)
            .unwrap();
        let one_shot_cycles = one_shot.cycles();

        let mut sliced = IpDriver::new(EncryptCore::new());
        sliced.write_key(&[9u8; 16]);
        let mut session = sliced.begin_stream(&blocks, Direction::Encrypt).unwrap();
        // Pump in deliberately awkward 7-cycle slices.
        while session.pump(&mut sliced, 7).unwrap() == StreamProgress::InProgress {}
        assert!(session.is_complete());
        assert_eq!(session.len(), 6);
        assert!(!session.is_empty());
        assert_eq!(session.results(), &expect[..]);
        assert_eq!(session.into_results(), expect);
        // Slicing must not change the cycle count: the schedule is
        // identical, only control returns to the caller more often.
        assert_eq!(sliced.cycles(), one_shot_cycles);
    }

    #[test]
    fn empty_stream_completes_without_clocking() {
        let mut drv = IpDriver::new(EncryptCore::new());
        drv.write_key(&[0u8; 16]);
        let before = drv.cycles();
        let out = drv.try_process_stream(&[], Direction::Encrypt).unwrap();
        assert!(out.is_empty());
        assert_eq!(drv.cycles(), before);
    }

    #[test]
    fn hardware_aes_runs_modes() {
        let key = [0x42u8; 16];
        let hw = HardwareAes::new(EncDecCore::new(), &key);
        let sw = rijndael::Aes128::new(&key);

        let mut hw_data = vec![0x11u8; 64];
        let mut sw_data = hw_data.clone();
        Cbc::encrypt(&hw, &[9u8; 16], &mut hw_data).unwrap();
        Cbc::encrypt(&sw, &[9u8; 16], &mut sw_data).unwrap();
        assert_eq!(hw_data, sw_data);
        Cbc::decrypt(&hw, &[9u8; 16], &mut hw_data).unwrap();
        assert_eq!(hw_data, vec![0x11u8; 64]);

        let mut stream = vec![5u8; 30];
        Ctr::apply(&hw, &[0u8; 16], &mut stream);
        let mut expect = vec![5u8; 30];
        Ctr::apply(&sw, &[0u8; 16], &mut expect);
        assert_eq!(stream, expect);
    }

    #[test]
    fn hardware_aes_all_vectors_via_ecb() {
        for v in AES128_VECTORS {
            let mut key = [0u8; 16];
            key.copy_from_slice(v.key);
            let hw = HardwareAes::new(EncDecCore::new(), &key);
            let mut data = v.plaintext.to_vec();
            Ecb::encrypt(&hw, &mut data).unwrap();
            assert_eq!(&data[..], &v.ciphertext[..], "{}", v.source);
            Ecb::decrypt(&hw, &mut data).unwrap();
            assert_eq!(&data[..], &v.plaintext[..], "{}", v.source);
        }
    }

    #[test]
    #[should_panic(expected = "cannot decrypt")]
    fn encrypt_only_hardware_rejects_decrypt() {
        let hw = HardwareAes::new(EncryptCore::new(), &[0u8; 16]);
        let mut block = [0u8; 16];
        hw.decrypt_in_place(&mut block);
    }

    #[test]
    fn debug_formats() {
        let hw = HardwareAes::new(EncryptCore::new(), &[0u8; 16]);
        assert!(format!("{hw:?}").contains("variant: Encrypt"));
    }
}

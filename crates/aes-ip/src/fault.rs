//! Single-event-upset (SEU) fault injection.
//!
//! The paper's §6 points to a companion effort, "Testing a Rijndael VHDL
//! Description to Single Event Upsets" \[16\], and motivates a
//! radiation-hardened variant. This module reproduces that experiment's
//! methodology on the gate-level model: flip one flip-flop at one clock
//! cycle during an encryption and classify what reaches the pins.
//!
//! Outcomes mirror the SEU literature:
//!
//! * **masked** — the correct ciphertext still comes out on time (the
//!   upset hit state that was dead or about to be overwritten);
//! * **corrupted** — `data_ok` rises on schedule but the ciphertext is
//!   wrong (for upsets in the datapath, AES diffusion turns one flipped
//!   bit into ~half the output bits — detectable only with end-to-end
//!   checks);
//! * **hung** — the control rings lost their one-hot token and the device
//!   never delivers (detectable by timeout/watchdog).

use crate::core::{CoreInputs, CoreOutputs, CoreVariant, CycleCore};
use crate::datapath::{block_to_u128, u128_to_block};
use crate::gate_sim::GateLevelCore;
use crate::netlist_gen::RomStyle;

/// What an injected upset did to the visible behaviour.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SeuOutcome {
    /// Correct ciphertext, on time.
    Masked,
    /// Wrong ciphertext delivered with a valid handshake.
    Corrupted {
        /// Hamming distance between the delivered and correct outputs.
        wrong_bits: u32,
    },
    /// No result within the watchdog window.
    Hung,
}

/// One injection's bookkeeping.
#[derive(Debug, Clone, Copy)]
pub struct SeuTrial {
    /// Flip-flop index (into the gate-level core's register file).
    pub ff_index: usize,
    /// Clock cycle of the upset, counted from the data-write edge.
    pub at_cycle: u64,
    /// Result classification.
    pub outcome: SeuOutcome,
}

/// Aggregated campaign results.
#[derive(Debug, Clone, Default)]
pub struct SeuCampaign {
    /// Every trial, in injection order.
    pub trials: Vec<SeuTrial>,
}

impl SeuCampaign {
    /// Fraction of upsets with no visible effect.
    #[must_use]
    pub fn masked_rate(&self) -> f64 {
        self.rate(|o| matches!(o, SeuOutcome::Masked))
    }

    /// Fraction delivering a wrong result with a good handshake — the
    /// dangerous class.
    #[must_use]
    pub fn corrupted_rate(&self) -> f64 {
        self.rate(|o| matches!(o, SeuOutcome::Corrupted { .. }))
    }

    /// Fraction that wedged the control and never delivered.
    #[must_use]
    pub fn hung_rate(&self) -> f64 {
        self.rate(|o| matches!(o, SeuOutcome::Hung))
    }

    /// Mean Hamming distance of corrupted outputs.
    #[must_use]
    pub fn mean_wrong_bits(&self) -> f64 {
        let (sum, n) = self
            .trials
            .iter()
            .fold((0u64, 0u64), |(s, n), t| match t.outcome {
                SeuOutcome::Corrupted { wrong_bits } => (s + u64::from(wrong_bits), n + 1),
                _ => (s, n),
            });
        if n == 0 {
            0.0
        } else {
            sum as f64 / n as f64
        }
    }

    fn rate(&self, pred: impl Fn(&SeuOutcome) -> bool) -> f64 {
        if self.trials.is_empty() {
            return 0.0;
        }
        self.trials.iter().filter(|t| pred(&t.outcome)).count() as f64 / self.trials.len() as f64
    }
}

/// Injects one SEU during an encryption and classifies the outcome.
///
/// The upset flips flip-flop `ff_index` on clock cycle `at_cycle`
/// (0 = the data-write edge). The watchdog allows 4× the rated latency.
///
/// # Panics
///
/// Panics if `ff_index` is out of range for the variant's register file.
#[must_use]
pub fn inject_seu(
    variant: CoreVariant,
    rom_style: RomStyle,
    key: &[u8; 16],
    plaintext: &[u8; 16],
    ff_index: usize,
    at_cycle: u64,
) -> SeuOutcome {
    // The golden result matches what the variant does with the block: the
    // decrypt-only device deciphers its input.
    let golden = {
        let aes = rijndael::Aes128::new(key);
        if variant == CoreVariant::Decrypt {
            aes.decrypt_block(plaintext)
        } else {
            aes.encrypt_block(plaintext)
        }
    };

    let mut core = GateLevelCore::new(variant, rom_style);
    core.rising_edge(&CoreInputs {
        setup: true,
        wr_key: true,
        din: block_to_u128(key),
        ..Default::default()
    });
    for _ in 0..core.key_setup_cycles() {
        core.rising_edge(&CoreInputs {
            setup: true,
            ..Default::default()
        });
    }

    core.rising_edge(&CoreInputs {
        wr_data: true,
        din: block_to_u128(plaintext),
        ..Default::default()
    });
    if at_cycle == 0 {
        core.flip_ff(ff_index);
    }
    let watchdog = 4 * core.latency_cycles();
    let mut delivered: Option<CoreOutputs> = None;
    for cycle in 1..=watchdog {
        let out = core.rising_edge(&CoreInputs::default());
        if cycle == at_cycle {
            core.flip_ff(ff_index);
        }
        if core.results_count() > 0 {
            delivered = Some(out);
            break;
        }
    }

    match delivered {
        None => SeuOutcome::Hung,
        Some(res) => {
            let got = u128_to_block(res.dout);
            if got == golden {
                SeuOutcome::Masked
            } else {
                let wrong_bits = (block_to_u128(&got) ^ block_to_u128(&golden)).count_ones();
                SeuOutcome::Corrupted { wrong_bits }
            }
        }
    }
}

/// Runs a campaign of `trials` random injections (deterministic per
/// `seed`), upsets uniformly spread over the register file and the
/// 50-cycle block window.
#[must_use]
pub fn run_campaign(
    variant: CoreVariant,
    rom_style: RomStyle,
    trials: usize,
    seed: u64,
) -> SeuCampaign {
    // Small deterministic PRNG (xorshift) to avoid external dependencies
    // in the library crate.
    let mut s = seed | 1;
    let mut next = move || {
        s ^= s << 13;
        s ^= s >> 7;
        s ^= s << 17;
        s
    };
    let probe = GateLevelCore::new(variant, rom_style);
    let ff_count = probe.dff_count();
    let latency = probe.latency_cycles();
    drop(probe);

    let key: [u8; 16] = core::array::from_fn(|i| (i as u8).wrapping_mul(0x11) ^ 0x2B);
    let pt: [u8; 16] = core::array::from_fn(|i| (i as u8).wrapping_mul(0x1F) ^ 0x77);

    let mut campaign = SeuCampaign::default();
    for _ in 0..trials {
        let ff_index = (next() as usize) % ff_count;
        let at_cycle = next() % latency;
        let outcome = inject_seu(variant, rom_style, &key, &pt, ff_index, at_cycle);
        campaign.trials.push(SeuTrial {
            ff_index,
            at_cycle,
            outcome,
        });
    }
    campaign
}

#[cfg(test)]
mod tests {
    use super::*;

    const KEY: [u8; 16] = [0x2Bu8; 16];
    const PT: [u8; 16] = [0x77u8; 16];

    #[test]
    fn no_injection_is_clean() {
        // Sanity: the harness itself (ff flipped twice = restored... no:
        // use an upset far after completion, cycle > latency is never
        // reached because the loop breaks at the result).
        let out = inject_seu(CoreVariant::Encrypt, RomStyle::Macro, &KEY, &PT, 0, 199);
        assert_eq!(out, SeuOutcome::Masked);
    }

    #[test]
    fn datapath_upset_diffuses() {
        // Find an upset that corrupts, and check the avalanche: a wrong
        // result should have many wrong bits when hit early.
        let mut saw_diffusion = false;
        for ff in (0..600).step_by(37) {
            if let SeuOutcome::Corrupted { wrong_bits } =
                inject_seu(CoreVariant::Encrypt, RomStyle::Macro, &KEY, &PT, ff, 7)
            {
                if wrong_bits >= 32 {
                    saw_diffusion = true;
                    break;
                }
            }
        }
        assert!(
            saw_diffusion,
            "no early datapath upset diffused into >=32 output bits"
        );
    }

    #[test]
    fn late_state_upset_flips_exactly_one_bit() {
        // An upset in the state register on the last ByteSub cycle of
        // round 10 (cycle 49) only passes through ShiftRow + AddKey —
        // both bit-preserving — so exactly one ciphertext bit flips. This
        // is the signature [16]-style campaigns use to distinguish
        // diffused (early) from late upsets.
        let mut ones = 0;
        // The state register is the first 128-FF group by construction.
        for ff in (0..128).step_by(7) {
            match inject_seu(CoreVariant::Encrypt, RomStyle::Macro, &KEY, &PT, ff, 49) {
                SeuOutcome::Corrupted { wrong_bits } => {
                    assert_eq!(
                        wrong_bits, 1,
                        "late state upset must flip one bit (ff {ff})"
                    );
                    ones += 1;
                }
                other => panic!("late state upset must corrupt, got {other:?} (ff {ff})"),
            }
        }
        assert!(ones > 0);
    }

    #[test]
    fn campaign_statistics_are_sane() {
        let c = run_campaign(CoreVariant::Encrypt, RomStyle::Macro, 40, 0xBEEF);
        assert_eq!(c.trials.len(), 40);
        let total = c.masked_rate() + c.corrupted_rate() + c.hung_rate();
        assert!((total - 1.0).abs() < 1e-9);
        // Some upsets must be masked (huge dead state like data_in when
        // idle-pending is empty) and some must corrupt.
        assert!(c.masked_rate() > 0.0);
        assert!(c.corrupted_rate() > 0.0);
        if c.corrupted_rate() > 0.0 {
            assert!(c.mean_wrong_bits() >= 1.0);
        }
    }
}

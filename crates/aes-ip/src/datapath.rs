//! Combinational datapath slices of the IP, as pure functions.
//!
//! Each function models one hardware block of the paper's architecture:
//! the 32-bit `ByteSub` slice backed by 4 S-box ROMs, the 128-bit
//! `ShiftRow` (pure wiring), the 128-bit `MixColumn` XOR network, the
//! 128-bit `AddKey`, and the `KStran`-based on-the-fly round-key steps.
//! The cycle-accurate cores in [`crate::core`] sequence these; the netlist
//! generators in [`crate::netlist_gen`] emit the same blocks as gates.
//!
//! # Bit conventions
//!
//! A 128-bit block is held as a `u128` with wire byte 0 (the first byte on
//! `din`) in the most-significant position. Column `c` of the state is then
//! bits `127-32c .. 96-32c`, matching the `state_t` layout of the paper's
//! Figure 1.

use gf256::{sbox, GfPoly4};

/// Converts a block from wire bytes to the internal `u128` form.
#[inline]
#[must_use]
pub fn block_to_u128(bytes: &[u8; 16]) -> u128 {
    u128::from_be_bytes(*bytes)
}

/// Converts the internal `u128` form back to wire bytes.
#[inline]
#[must_use]
pub fn u128_to_block(value: u128) -> [u8; 16] {
    value.to_be_bytes()
}

/// Extracts state column `c` (0..4) as a 32-bit word.
///
/// # Panics
///
/// Panics if `c >= 4`.
#[inline]
#[must_use]
pub fn column(state: u128, c: usize) -> u32 {
    assert!(c < 4, "column index out of range");
    (state >> (96 - 32 * c)) as u32
}

/// Replaces state column `c` (0..4).
///
/// # Panics
///
/// Panics if `c >= 4`.
#[inline]
#[must_use]
pub fn with_column(state: u128, c: usize, word: u32) -> u128 {
    assert!(c < 4, "column index out of range");
    let shift = 96 - 32 * c;
    (state & !(0xFFFF_FFFFu128 << shift)) | (u128::from(word) << shift)
}

/// The 32-bit `ByteSub` slice: four parallel S-box ROM lookups
/// (one column per clock in the paper's datapath).
#[inline]
#[must_use]
pub fn byte_sub_word(word: u32) -> u32 {
    let b = word.to_be_bytes();
    u32::from_be_bytes([
        sbox::sub(b[0]),
        sbox::sub(b[1]),
        sbox::sub(b[2]),
        sbox::sub(b[3]),
    ])
}

/// The 32-bit `IByteSub` slice (four inverse S-box ROMs).
#[inline]
#[must_use]
pub fn inv_byte_sub_word(word: u32) -> u32 {
    let b = word.to_be_bytes();
    u32::from_be_bytes([
        sbox::inv_sub(b[0]),
        sbox::inv_sub(b[1]),
        sbox::inv_sub(b[2]),
        sbox::inv_sub(b[3]),
    ])
}

/// 128-bit `ShiftRow`: row `r` rotates left by `r` columns. In hardware
/// this is wiring only — zero logic cells, which is why the paper builds it
/// at the full 128 bits.
#[must_use]
pub fn shift_rows(state: u128) -> u128 {
    let b = u128_to_block(state);
    let mut out = [0u8; 16];
    for c in 0..4 {
        for r in 0..4 {
            out[4 * c + r] = b[4 * ((c + r) % 4) + r];
        }
    }
    block_to_u128(&out)
}

/// 128-bit `IShiftRow`: row `r` rotates right by `r` columns
/// (paper Figure 6).
#[must_use]
pub fn inv_shift_rows(state: u128) -> u128 {
    let b = u128_to_block(state);
    let mut out = [0u8; 16];
    for c in 0..4 {
        for r in 0..4 {
            out[4 * c + r] = b[4 * ((c + 4 - r) % 4) + r];
        }
    }
    block_to_u128(&out)
}

/// 128-bit `MixColumn` (paper Figure 7): four parallel column multipliers
/// by `c(x) = {03}x³ + {01}x² + {01}x + {02}`.
#[must_use]
pub fn mix_columns(state: u128) -> u128 {
    let mut out = state;
    for c in 0..4 {
        let col = column(state, c).to_be_bytes();
        let mixed = GfPoly4::MIX_COLUMN.apply_column(col);
        out = with_column(out, c, u32::from_be_bytes(mixed));
    }
    out
}

/// 128-bit `IMixColumn`: multipliers by `d(x) = {0B}x³+{0D}x²+{09}x+{0E}`.
#[must_use]
pub fn inv_mix_columns(state: u128) -> u128 {
    let mut out = state;
    for c in 0..4 {
        let col = column(state, c).to_be_bytes();
        let mixed = GfPoly4::INV_MIX_COLUMN.apply_column(col);
        out = with_column(out, c, u32::from_be_bytes(mixed));
    }
    out
}

/// 128-bit `AddKey`: a plain XOR plane. Self-inverse.
#[inline]
#[must_use]
pub fn add_key(state: u128, round_key: u128) -> u128 {
    state ^ round_key
}

/// One forward on-the-fly key-schedule step: derives round key `round`
/// from round key `round - 1`.
///
/// `KStran` (rotate + 4 S-boxes + Rcon) feeds word 0; words 1–3 are chained
/// XORs — the structure of the paper's Figure 3 feeding the `Add Key`
/// plane.
///
/// # Panics
///
/// Panics if `round == 0` (round key 0 is the cipher key itself).
#[must_use]
pub fn next_round_key(prev: u128, round: usize) -> u128 {
    assert!(round >= 1, "round key 0 is the cipher key");
    let u: [u32; 4] = core::array::from_fn(|c| column(prev, c));
    let mut v = [0u32; 4];
    v[0] = u[0] ^ kstran_word(u[3], round);
    v[1] = u[1] ^ v[0];
    v[2] = u[2] ^ v[1];
    v[3] = u[3] ^ v[2];
    pack_key(v)
}

/// One backward on-the-fly key-schedule step: derives round key
/// `round - 1` from round key `round` (used by the decrypt core, which
/// walks the schedule in reverse after computing the final round key once
/// during `setup`).
///
/// # Panics
///
/// Panics if `round == 0`.
#[must_use]
pub fn prev_round_key(next: u128, round: usize) -> u128 {
    assert!(round >= 1, "round key 0 has no predecessor");
    let v: [u32; 4] = core::array::from_fn(|c| column(next, c));
    let mut u = [0u32; 4];
    u[3] = v[3] ^ v[2];
    u[2] = v[2] ^ v[1];
    u[1] = v[1] ^ v[0];
    u[0] = v[0] ^ kstran_word(u[3], round);
    pack_key(u)
}

/// The `KStran` word function: `SubWord(RotWord(w)) ^ Rcon[round]`.
///
/// Uses the same 4-S-box hardware slice as one `ByteSub` step — the reason
/// the encrypt core holds 8 S-boxes total (4 datapath + 4 key schedule).
#[must_use]
pub fn kstran_word(w: u32, round: usize) -> u32 {
    byte_sub_word(w.rotate_left(8)) ^ rcon_word(round)
}

/// Round constant as a 32-bit word (`x^(round-1)` in the top byte).
///
/// # Panics
///
/// Panics if `round == 0`.
#[must_use]
pub fn rcon_word(round: usize) -> u32 {
    assert!(round >= 1, "round constants are 1-indexed");
    u32::from(gf256::Gf256::new(2).pow((round - 1) as u32).value()) << 24
}

fn pack_key(words: [u32; 4]) -> u128 {
    words
        .iter()
        .fold(0u128, |acc, &w| (acc << 32) | u128::from(w))
}

/// Computes round key `n` by iterating [`next_round_key`] from the cipher
/// key — the operation the decrypt core performs during its `setup`
/// period (10 clock cycles for AES-128).
#[must_use]
pub fn round_key_at(cipher_key: u128, n: usize) -> u128 {
    let mut k = cipher_key;
    for round in 1..=n {
        k = next_round_key(k, round);
    }
    k
}

#[cfg(test)]
mod tests {
    use super::*;
    use rijndael::{KeySchedule, State};

    const FIPS_KEY: [u8; 16] = [
        0x2B, 0x7E, 0x15, 0x16, 0x28, 0xAE, 0xD2, 0xA6, 0xAB, 0xF7, 0x15, 0x88, 0x09, 0xCF, 0x4F,
        0x3C,
    ];

    fn ref_state(x: u128) -> State<4> {
        State::from_bytes(&u128_to_block(x))
    }

    fn from_ref(st: &State<4>) -> u128 {
        block_to_u128(&st.to_bytes())
    }

    #[test]
    fn block_roundtrip() {
        let bytes: [u8; 16] = core::array::from_fn(|i| i as u8);
        assert_eq!(u128_to_block(block_to_u128(&bytes)), bytes);
        assert_eq!(block_to_u128(&bytes) >> 120, 0x00);
        assert_eq!(block_to_u128(&bytes) & 0xFF, 0x0F);
    }

    #[test]
    fn column_extraction_matches_state() {
        let bytes: [u8; 16] = core::array::from_fn(|i| (i * 7 + 3) as u8);
        let x = block_to_u128(&bytes);
        let st = State::<4>::from_bytes(&bytes);
        for c in 0..4 {
            assert_eq!(column(x, c), st.column_word(c));
        }
        let y = with_column(x, 2, 0xAABB_CCDD);
        assert_eq!(column(y, 2), 0xAABB_CCDD);
        assert_eq!(column(y, 1), column(x, 1));
    }

    #[test]
    fn byte_sub_word_is_four_sboxes() {
        assert_eq!(byte_sub_word(0x0053_00FF), {
            u32::from_be_bytes([
                gf256::sbox::sub(0x00),
                gf256::sbox::sub(0x53),
                gf256::sbox::sub(0x00),
                gf256::sbox::sub(0xFF),
            ])
        });
        for w in [0u32, 0xFFFF_FFFF, 0x0123_4567] {
            assert_eq!(inv_byte_sub_word(byte_sub_word(w)), w);
        }
    }

    #[test]
    fn shift_rows_matches_reference() {
        let bytes: [u8; 16] = core::array::from_fn(|i| i as u8);
        let x = block_to_u128(&bytes);
        let mut st = State::<4>::from_bytes(&bytes);
        rijndael::transform::shift_row(&mut st);
        assert_eq!(shift_rows(x), from_ref(&st));
        assert_eq!(inv_shift_rows(shift_rows(x)), x);

        let mut st2 = ref_state(x);
        rijndael::transform::inv_shift_row(&mut st2);
        assert_eq!(inv_shift_rows(x), from_ref(&st2));
    }

    #[test]
    fn mix_columns_matches_reference() {
        for seed in 0u8..8 {
            let bytes: [u8; 16] = core::array::from_fn(|i| (i as u8).wrapping_mul(29) ^ seed);
            let x = block_to_u128(&bytes);
            let mut st = State::<4>::from_bytes(&bytes);
            rijndael::transform::mix_column(&mut st);
            assert_eq!(mix_columns(x), from_ref(&st), "seed {seed}");
            assert_eq!(inv_mix_columns(mix_columns(x)), x);
        }
    }

    #[test]
    fn key_steps_match_stored_schedule() {
        let ks = KeySchedule::expand(&FIPS_KEY, 4).unwrap();
        let pack = |round: usize| {
            ks.round_key(round)
                .iter()
                .fold(0u128, |acc, &w| (acc << 32) | u128::from(w))
        };
        let mut k = block_to_u128(&FIPS_KEY);
        assert_eq!(k, pack(0));
        for round in 1..=10 {
            k = next_round_key(k, round);
            assert_eq!(k, pack(round), "forward step at round {round}");
        }
        // Walk back down.
        for round in (1..=10).rev() {
            k = prev_round_key(k, round);
            assert_eq!(k, pack(round - 1), "backward step at round {round}");
        }
    }

    #[test]
    fn round_key_at_jumps_to_final_key() {
        let ks = KeySchedule::expand(&FIPS_KEY, 4).unwrap();
        let expect = ks
            .round_key(10)
            .iter()
            .fold(0u128, |acc, &w| (acc << 32) | u128::from(w));
        assert_eq!(round_key_at(block_to_u128(&FIPS_KEY), 10), expect);
        assert_eq!(
            round_key_at(block_to_u128(&FIPS_KEY), 0),
            block_to_u128(&FIPS_KEY)
        );
    }

    #[test]
    fn kstran_matches_reference() {
        for (w, r) in [(0x09CF_4F3Cu32, 1usize), (0xDEAD_BEEF, 7), (0, 10)] {
            assert_eq!(kstran_word(w, r), rijndael::key_schedule::kstran(w, r));
        }
    }

    #[test]
    fn full_round_composition_matches_reference_cipher() {
        // Compose one full encryption from datapath slices and compare with
        // the reference block encryption.
        let cipher = rijndael::Rijndael::<4>::new(&FIPS_KEY).unwrap();
        let pt: [u8; 16] = core::array::from_fn(|i| (i * 13 + 1) as u8);
        let mut expect = pt;
        cipher.encrypt(&mut expect);

        let mut state = add_key(block_to_u128(&pt), block_to_u128(&FIPS_KEY));
        let mut key = block_to_u128(&FIPS_KEY);
        for round in 1..=10 {
            // 32-bit ByteSub, one column per "cycle".
            for c in 0..4 {
                state = with_column(state, c, byte_sub_word(column(state, c)));
            }
            state = shift_rows(state);
            if round < 10 {
                state = mix_columns(state);
            }
            key = next_round_key(key, round);
            state = add_key(state, key);
        }
        assert_eq!(u128_to_block(state), expect);
    }

    #[test]
    #[should_panic(expected = "column index out of range")]
    fn column_bounds() {
        let _ = column(0, 4);
    }
}

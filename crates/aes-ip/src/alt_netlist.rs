//! Gate-level netlists for the alternative datapath architectures.
//!
//! The paper's §4/§6 architecture discussion and Table 3 comparison points
//! are re-derived by pushing real netlists of each design point through
//! the same synthesis flow as the primary IP:
//!
//! * [`AltArch::Full128`] — everything 128 bits wide, 1 cycle/round,
//!   16 + 4 S-boxes (the high-performance point, \[1\] in the paper);
//! * [`AltArch::All32`] — everything 32 bits wide, 12 cycles/round
//!   (4 `ByteSub` + 4 `ShiftRow` + 4 `MixColumn`+`AddKey` slices), the
//!   paper's explicit baseline;
//! * [`AltArch::Serial8`] — one 8-bit S-box substituting a byte per
//!   cycle, a row-serial `ShiftRow` phase and a single shared column unit,
//!   24 cycles/round (the low-cost point, in the spirit of \[14\]).
//!
//! Each generated netlist drives the same pin interface as the primary IP
//! and is verified against [`crate::alt::AltEncryptCore`] edge by edge in
//! the tests.

use gf256::SBOX;
use netlist::ir::{NetId, Netlist};

use crate::alt::AltArch;
use crate::netlist_gen::RomStyle;

type Byte = [NetId; 8];
type Bytes = Vec<Byte>;

struct B<'a> {
    nl: &'a mut Netlist,
    rom_style: RomStyle,
}

impl B<'_> {
    fn sbox(&mut self, addr: &Byte) -> Byte {
        let out = match self.rom_style {
            RomStyle::Macro => self.nl.rom256x8(addr, &SBOX),
            RomStyle::LogicCells => self.nl.rom256x8_lut(addr, &SBOX),
        };
        out.try_into().expect("rom emits 8 bits")
    }

    fn xtime(&mut self, x: &Byte) -> Byte {
        [
            x[7],
            self.nl.xor2(x[0], x[7]),
            x[1],
            self.nl.xor2(x[2], x[7]),
            self.nl.xor2(x[3], x[7]),
            x[4],
            x[5],
            x[6],
        ]
    }

    fn xor_bytes(&mut self, terms: &[Byte]) -> Byte {
        let words: Vec<Vec<NetId>> = terms.iter().map(|t| t.to_vec()).collect();
        self.nl
            .xor_many(&words)
            .try_into()
            .expect("byte stays 8 bits")
    }

    fn mix_column(&mut self, col: &[Byte; 4]) -> [Byte; 4] {
        let xt: Vec<Byte> = col.iter().map(|b| self.xtime(b)).collect();
        [
            self.xor_bytes(&[xt[0], xt[1], col[1], col[2], col[3]]),
            self.xor_bytes(&[col[0], xt[1], xt[2], col[2], col[3]]),
            self.xor_bytes(&[col[0], col[1], xt[2], xt[3], col[3]]),
            self.xor_bytes(&[xt[0], col[0], col[1], col[2], xt[3]]),
        ]
    }

    fn mux_byte(&mut self, sel: NetId, a: &Byte, b: &Byte) -> Byte {
        core::array::from_fn(|i| self.nl.mux2(sel, a[i], b[i]))
    }

    fn mux_bytes(&mut self, sel: NetId, a: &Bytes, b: &Bytes) -> Bytes {
        a.iter()
            .zip(b)
            .map(|(x, y)| self.mux_byte(sel, x, y))
            .collect()
    }

    fn xor_words(&mut self, a: &Bytes, b: &Bytes) -> Bytes {
        a.iter()
            .zip(b)
            .map(|(x, y)| self.xor_bytes(&[*x, *y]))
            .collect()
    }

    /// One-hot AND-OR byte selection.
    fn select_byte(&mut self, bytes: &[Byte], onehot: &[NetId]) -> Byte {
        assert_eq!(bytes.len(), onehot.len());
        core::array::from_fn(|bit| {
            let mut acc: Option<NetId> = None;
            for (k, byte) in bytes.iter().enumerate() {
                let term = self.nl.and2(onehot[k], byte[bit]);
                acc = Some(match acc {
                    None => term,
                    Some(prev) => self.nl.or2(prev, term),
                });
            }
            acc.expect("nonempty selection")
        })
    }

    fn rcon_from_onehot(&mut self, onehot: &[NetId], constants: &[u8]) -> Byte {
        assert_eq!(onehot.len(), constants.len());
        let zero = self.nl.constant(false);
        core::array::from_fn(|j| {
            let mut acc: Option<NetId> = None;
            for (k, &c) in constants.iter().enumerate() {
                if (c >> j) & 1 == 1 {
                    acc = Some(match acc {
                        None => onehot[k],
                        Some(prev) => self.nl.or2(prev, onehot[k]),
                    });
                }
            }
            acc.unwrap_or(zero)
        })
    }

    /// Full `KStran` + chain with a dedicated 4-S-box bank.
    fn next_key_banked(&mut self, key: &Bytes, rcon: &Byte) -> Bytes {
        let rot = [key[13], key[14], key[15], key[12]];
        let mut ks: [Byte; 4] = core::array::from_fn(|i| self.sbox(&rot[i]));
        ks[0] = self.xor_bytes(&[ks[0], *rcon]);
        self.chain(key, &ks)
    }

    fn chain(&mut self, key: &Bytes, ks: &[Byte; 4]) -> Bytes {
        let mut out: Bytes = Vec::with_capacity(16);
        for i in 0..4 {
            out.push(self.xor_bytes(&[key[i], ks[i]]));
        }
        for w in 1..4 {
            for i in 0..4 {
                let prev = out[4 * (w - 1) + i];
                out.push(self.xor_bytes(&[key[4 * w + i], prev]));
            }
        }
        out
    }
}

fn shift_rows_wires(state: &Bytes) -> Bytes {
    (0..16)
        .map(|i| {
            let (c, r) = (i / 4, i % 4);
            state[4 * ((c + r) % 4) + r]
        })
        .collect()
}

fn bus_to_bytes(bus: &[NetId]) -> Bytes {
    (0..16)
        .map(|k| core::array::from_fn(|j| bus[(15 - k) * 8 + j]))
        .collect()
}

fn bytes_to_bus(bytes: &Bytes) -> Vec<NetId> {
    let mut bus = vec![NetId(0); 128];
    for (k, byte) in bytes.iter().enumerate() {
        for (j, &n) in byte.iter().enumerate() {
            bus[(15 - k) * 8 + j] = n;
        }
    }
    bus
}

/// Emits an encrypt-only gate-level netlist for the given design point.
///
/// The pin interface matches [`crate::netlist_gen::build_core_netlist`]
/// minus `enc_dec`, so [`crate::gate_sim::GateLevelCore::from_netlist`]
/// drives it directly.
///
/// # Panics
///
/// Panics if `arch` is [`AltArch::Mixed32x128`] — use
/// [`crate::netlist_gen::build_core_netlist`] for the paper's own
/// architecture.
#[must_use]
pub fn build_alt_netlist(arch: AltArch, rom_style: RomStyle) -> Netlist {
    assert!(
        arch != AltArch::Mixed32x128,
        "the paper's architecture is built by netlist_gen::build_core_netlist"
    );
    let cycles = arch.cycles_per_round() as usize;
    let name = format!(
        "aes128-{}-{}",
        match arch {
            AltArch::Full128 => "full128",
            AltArch::All32 => "all32",
            AltArch::Serial8 => "serial8",
            AltArch::Mixed32x128 => unreachable!(),
        },
        match rom_style {
            RomStyle::Macro => "eab",
            RomStyle::LogicCells => "lcrom",
        }
    );
    let mut nl = Netlist::new(name);

    // Ports.
    let setup = nl.input("setup");
    let wr_data = nl.input("wr_data");
    let wr_key = nl.input("wr_key");
    let din_bus = nl.input_bus("din", 128);

    // Registers.
    let state_q = nl.dff_word_uninit(128);
    let key0_q = nl.dff_word_uninit(128);
    let round_key_q = nl.dff_word_uninit(128);
    let data_in_q = nl.dff_word_uninit(128);
    let dout_q = nl.dff_word_uninit(128);
    let valid_q = nl.dff_uninit();
    let data_ok_q = nl.dff_uninit();
    let busy_q = nl.dff_uninit();
    let cycle_q = nl.dff_word_uninit(cycles as u32);
    let round_q = nl.dff_word_uninit(10);
    // Serial8 accumulates the KStran word one byte at a time.
    let ks_q = if arch == AltArch::Serial8 {
        nl.dff_word_uninit(32)
    } else {
        Vec::new()
    };

    let mut b = B {
        nl: &mut nl,
        rom_style,
    };

    let din = bus_to_bytes(&din_bus);
    let state = bus_to_bytes(&state_q);
    let key0 = bus_to_bytes(&key0_q);
    let round_key = bus_to_bytes(&round_key_q);
    let data_in = bus_to_bytes(&data_in_q);

    // Control (same handshake as the primary IP).
    let op = b.nl.not(setup);
    let load_key = b.nl.and2(setup, wr_key);
    let not_load_key = b.nl.not(load_key);
    let wr_now = b.nl.and2(op, wr_data);
    let have_data = b.nl.or2(wr_now, valid_q);
    let last_cycle = cycle_q[cycles - 1];
    let r10_last = b.nl.and2(round_q[9], last_cycle);
    let finishing = b.nl.and2(busy_q, r10_last);
    let not_busy = b.nl.not(busy_q);
    let free = b.nl.or2(not_busy, finishing);
    let consume = {
        let t = b.nl.and2(op, have_data);
        b.nl.and2(t, free)
    };
    let not_consume = b.nl.not(consume);

    let not_finishing = b.nl.not(finishing);
    let keep_busy = b.nl.and2(busy_q, not_finishing);
    let busy_d0 = b.nl.or2(consume, keep_busy);
    let busy_d = b.nl.and2(busy_d0, not_load_key);
    b.nl.connect_dff(busy_q, busy_d);

    let valid_d0 = b.nl.and2(not_consume, have_data);
    let valid_d = b.nl.and2(valid_d0, not_load_key);
    b.nl.connect_dff(valid_q, valid_d);

    // Cycle ring.
    {
        let not_r10 = b.nl.not(round_q[9]);
        let wrap = b.nl.and2(last_cycle, not_r10);
        let wrap_busy = b.nl.and2(busy_q, wrap);
        let c1_d0 = b.nl.or2(consume, wrap_busy);
        let c1_d = b.nl.and2(c1_d0, not_load_key);
        b.nl.connect_dff(cycle_q[0], c1_d);
        for k in 0..cycles - 1 {
            let adv = b.nl.and2(busy_q, cycle_q[k]);
            let d = b.nl.and2(adv, not_load_key);
            b.nl.connect_dff(cycle_q[k + 1], d);
        }
    }

    // Round ring.
    {
        let not_last = b.nl.not(last_cycle);
        let hold1 = b.nl.and2(round_q[0], not_last);
        let hold1b = b.nl.and2(busy_q, hold1);
        let r1_d0 = b.nl.or2(consume, hold1b);
        let r1_d = b.nl.and2(r1_d0, not_load_key);
        b.nl.connect_dff(round_q[0], r1_d);
        for k in 0..9 {
            let adv = b.nl.and2(round_q[k], last_cycle);
            let hold = b.nl.and2(round_q[k + 1], not_last);
            let either = b.nl.or2(adv, hold);
            let gated = b.nl.and2(busy_q, either);
            let d = b.nl.and2(gated, not_load_key);
            b.nl.connect_dff(round_q[k + 1], d);
        }
    }

    let rcon_consts: Vec<u8> = (1..=10u32)
        .map(|r| gf256::Gf256::new(2).pow(r - 1).value())
        .collect();
    let rcon = b.rcon_from_onehot(&round_q, &rcon_consts);

    // ------------------------------------------------------ architecture
    // Each arm produces: the state-register writeback (before the consume
    // override), the stepped round key + its step strobe, and the commit
    // strobe delivering the round-10 result.
    let commit_now;
    let committed: Bytes;
    let state_active: Bytes;
    let key_step_now;
    let key_stepped: Bytes;

    match arch {
        AltArch::Full128 => {
            // The whole round in one cycle: 16 S-boxes + shift + mix +
            // add, key stepped the same cycle.
            let subbed: Bytes = state.iter().map(|byt| b.sbox(byt)).collect();
            let shifted = shift_rows_wires(&subbed);
            let mut mixed: Bytes = Vec::with_capacity(16);
            for c in 0..4 {
                let col = [
                    shifted[4 * c],
                    shifted[4 * c + 1],
                    shifted[4 * c + 2],
                    shifted[4 * c + 3],
                ];
                mixed.extend(b.mix_column(&col));
            }
            let not_last_round = b.nl.not(round_q[9]);
            let linear = b.mux_bytes(not_last_round, &shifted, &mixed);
            let next_key = b.next_key_banked(&round_key, &rcon);
            let out = b.xor_words(&linear, &next_key);

            commit_now = b.nl.and2(busy_q, cycle_q[0]);
            committed = out.clone();
            state_active = out;
            key_step_now = commit_now;
            key_stepped = next_key;
        }
        AltArch::All32 => {
            // Cycles 1-4: ByteSub column c. Cycles 5-8: ShiftRow row r.
            // Cycles 9-12: MixColumn + AddKey column c. Key at cycle 1.
            let sub_oh: [NetId; 4] = core::array::from_fn(|k| b.nl.and2(busy_q, cycle_q[k]));
            let shift_oh: [NetId; 4] = core::array::from_fn(|k| b.nl.and2(busy_q, cycle_q[4 + k]));
            let mix_oh: [NetId; 4] = core::array::from_fn(|k| b.nl.and2(busy_q, cycle_q[8 + k]));

            // Substitution slice: 4 S-boxes on the selected column.
            let col_in: [Byte; 4] = core::array::from_fn(|r| {
                let bytes: Vec<Byte> = (0..4).map(|c| state[4 * c + r]).collect();
                b.select_byte(&bytes, &sub_oh)
            });
            let col_sub: [Byte; 4] = core::array::from_fn(|r| b.sbox(&col_in[r]));

            // Mix slice: one column unit, column selected one-hot; AddKey
            // with the matching round-key column.
            let mix_in: [Byte; 4] = core::array::from_fn(|r| {
                let bytes: Vec<Byte> = (0..4).map(|c| state[4 * c + r]).collect();
                b.select_byte(&bytes, &mix_oh)
            });
            let mixed_col = b.mix_column(&mix_in);
            let key_col: [Byte; 4] = core::array::from_fn(|r| {
                let bytes: Vec<Byte> = (0..4).map(|c| round_key[4 * c + r]).collect();
                b.select_byte(&bytes, &mix_oh)
            });
            let not_last_round = b.nl.not(round_q[9]);
            let lin_col: [Byte; 4] =
                core::array::from_fn(|r| b.mux_byte(not_last_round, &mix_in[r], &mixed_col[r]));
            let out_col: [Byte; 4] =
                core::array::from_fn(|r| b.xor_bytes(&[lin_col[r], key_col[r]]));

            let next_key = b.next_key_banked(&round_key, &rcon);

            // Per-byte writeback.
            let shifted = shift_rows_wires(&state);
            let mut active: Bytes = Vec::with_capacity(16);
            for i in 0..16 {
                let (c, r) = (i / 4, i % 4);
                let mut v = state[i];
                // Substitution writeback for this byte's column.
                v = b.mux_byte(sub_oh[c], &v, &col_sub[r]);
                // Shift writeback for this byte's row (row r shifts during
                // cycle 5+r): the byte takes its ShiftRow source.
                v = b.mux_byte(shift_oh[r], &v, &shifted[i]);
                // Mix/AddKey writeback for this byte's column.
                v = b.mux_byte(mix_oh[c], &v, &out_col[r]);
                active.push(v);
            }

            commit_now = b.nl.and2(busy_q, cycle_q[11]);
            // The committed block is the state after the final column
            // writeback; assembled per byte: columns 0..2 already updated
            // in the state register, column 3 from the unit.
            committed = (0..16)
                .map(|i| if i / 4 == 3 { out_col[i % 4] } else { state[i] })
                .collect();
            state_active = active;
            key_step_now = b.nl.and2(busy_q, cycle_q[0]);
            key_stepped = next_key;
        }
        AltArch::Serial8 => {
            // Cycles 1-16: one S-box substitutes byte i (a second S-box
            // builds the KStran word byte by byte during cycles 1-4).
            // Cycles 17-20: ShiftRow row r (row ops are independent).
            // Cycles 21-24: the shared column unit does MixColumn+AddKey
            // for column c; the round key steps at cycle 20 so the
            // commits read the new key.
            let byte_oh: Vec<NetId> = (0..16).map(|k| b.nl.and2(busy_q, cycle_q[k])).collect();
            let shift_oh: [NetId; 4] = core::array::from_fn(|k| b.nl.and2(busy_q, cycle_q[16 + k]));
            let col_oh: [NetId; 4] = core::array::from_fn(|k| b.nl.and2(busy_q, cycle_q[20 + k]));

            let sub_in = b.select_byte(&state, &byte_oh);
            let sub_out = b.sbox(&sub_in);

            // KStran byte pipeline: cycle j+1 substitutes rotated byte j.
            let ks_oh: [NetId; 4] = core::array::from_fn(|k| byte_oh[k]);
            let rot = [round_key[13], round_key[14], round_key[15], round_key[12]];
            let ks_in = b.select_byte(&rot, &ks_oh);
            let ks_out = b.sbox(&ks_in);
            // Accumulate into the 32-bit ks register (byte j at cycle j+1).
            let ks_bytes: [Byte; 4] =
                core::array::from_fn(|j| core::array::from_fn(|bit| ks_q[8 * j + bit]));
            for j in 0..4 {
                for bit in 0..8 {
                    let d = b.nl.mux2(ks_oh[j], ks_q[8 * j + bit], ks_out[bit]);
                    b.nl.connect_dff(ks_q[8 * j + bit], d);
                }
            }
            let mut ks_full = ks_bytes;
            ks_full[0] = b.xor_bytes(&[ks_full[0], rcon]);
            let next_key = b.chain(&round_key, &ks_full);

            // Column unit: columns are independent after the shift phase.
            let mix_in: [Byte; 4] = core::array::from_fn(|r| {
                let bytes: Vec<Byte> = (0..4).map(|c| state[4 * c + r]).collect();
                b.select_byte(&bytes, &col_oh)
            });
            let mixed_col = b.mix_column(&mix_in);
            let key_col: [Byte; 4] = core::array::from_fn(|r| {
                let bytes: Vec<Byte> = (0..4).map(|c| round_key[4 * c + r]).collect();
                b.select_byte(&bytes, &col_oh)
            });
            let not_last_round = b.nl.not(round_q[9]);
            let lin_col: [Byte; 4] =
                core::array::from_fn(|r| b.mux_byte(not_last_round, &mix_in[r], &mixed_col[r]));
            let out_col: [Byte; 4] =
                core::array::from_fn(|r| b.xor_bytes(&[lin_col[r], key_col[r]]));

            let shifted = shift_rows_wires(&state);
            let mut active: Bytes = Vec::with_capacity(16);
            for i in 0..16 {
                let r = i % 4;
                let c = i / 4;
                let mut v = b.mux_byte(byte_oh[i], &state[i], &sub_out);
                v = b.mux_byte(shift_oh[r], &v, &shifted[i]);
                v = b.mux_byte(col_oh[c], &v, &out_col[r]);
                active.push(v);
            }

            commit_now = b.nl.and2(busy_q, cycle_q[23]);
            committed = (0..16)
                .map(|i| if i / 4 == 3 { out_col[i % 4] } else { state[i] })
                .collect();
            state_active = active;
            // Step the round key at the last shift cycle so every column
            // commit reads the new key.
            key_step_now = b.nl.and2(busy_q, cycle_q[19]);
            key_stepped = next_key;
        }
        AltArch::Mixed32x128 => unreachable!(),
    }

    // Consume override on the state register.
    let din_eff = b.mux_bytes(wr_now, &data_in, &din);
    let loaded = b.xor_words(&din_eff, &key0);
    let state_d_bytes: Bytes = (0..16)
        .map(|i| -> Byte {
            core::array::from_fn(|j| b.nl.mux2(consume, state_active[i][j], loaded[i][j]))
        })
        .collect();
    let state_d = bytes_to_bus(&state_d_bytes);
    b.nl.connect_dff_word(&state_q, &state_d);

    // key0 register.
    for i in 0..128 {
        let d = b.nl.mux2(load_key, key0_q[i], din_bus[i]);
        b.nl.connect_dff(key0_q[i], d);
    }

    // round_key register.
    {
        let stepped_bus = bytes_to_bus(&key_stepped);
        let key0_bus: Vec<NetId> = key0_q.clone();
        for i in 0..128 {
            let mut d = b.nl.mux2(key_step_now, round_key_q[i], stepped_bus[i]);
            d = b.nl.mux2(consume, d, key0_bus[i]);
            let d = b.nl.mux2(load_key, d, din_bus[i]);
            b.nl.connect_dff(round_key_q[i], d);
        }
    }

    // data_in register.
    for i in 0..128 {
        let d = b.nl.mux2(wr_now, data_in_q[i], din_bus[i]);
        b.nl.connect_dff(data_in_q[i], d);
    }

    // Output register + handshake.
    {
        let final_commit = b.nl.and2(commit_now, round_q[9]);
        let committed_bus = bytes_to_bus(&committed);
        for i in 0..128 {
            let d = b.nl.mux2(final_commit, dout_q[i], committed_bus[i]);
            b.nl.connect_dff(dout_q[i], d);
        }
        let ok_hold = b.nl.or2(data_ok_q, final_commit);
        let ok_d = b.nl.and2(ok_hold, not_load_key);
        b.nl.connect_dff(data_ok_q, ok_d);
    }

    nl.output("data_ok", data_ok_q);
    nl.output_bus("dout", &dout_q);
    nl.validate();
    nl
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::core::{CoreInputs, CoreVariant, CycleCore};
    use crate::gate_sim::GateLevelCore;
    use rijndael::vectors::FIPS197_C1;

    fn check_arch(arch: AltArch) {
        let nl = build_alt_netlist(arch, RomStyle::Macro);
        let mut gate = GateLevelCore::from_netlist(nl, CoreVariant::Encrypt);
        let mut model = crate::alt::AltEncryptCore::new(arch);

        let mut key = [0u8; 16];
        key.copy_from_slice(FIPS197_C1.key);
        let key_word = crate::datapath::block_to_u128(&key);
        let pt_word = crate::datapath::block_to_u128(&FIPS197_C1.plaintext);

        let mut stim = Vec::new();
        stim.push(CoreInputs {
            setup: true,
            wr_key: true,
            din: key_word,
            ..Default::default()
        });
        stim.push(CoreInputs {
            wr_data: true,
            din: pt_word,
            ..Default::default()
        });
        for _ in 0..arch.latency_cycles() + 20 {
            stim.push(CoreInputs::default());
        }
        let mut finished = false;
        for (t, inputs) in stim.iter().enumerate() {
            let g = gate.rising_edge(inputs);
            let m = model.rising_edge(inputs);
            assert_eq!(g.data_ok, m.data_ok, "{arch}: data_ok diverged at edge {t}");
            if m.data_ok {
                assert_eq!(g.dout, m.dout, "{arch}: dout diverged at edge {t}");
                assert_eq!(
                    crate::datapath::u128_to_block(g.dout),
                    FIPS197_C1.ciphertext,
                    "{arch}: wrong ciphertext"
                );
                finished = true;
            }
        }
        assert!(finished, "{arch}: never finished");
    }

    #[test]
    fn full128_netlist_matches_model() {
        check_arch(AltArch::Full128);
    }

    #[test]
    fn all32_netlist_matches_model() {
        check_arch(AltArch::All32);
    }

    #[test]
    fn serial8_netlist_matches_model() {
        check_arch(AltArch::Serial8);
    }

    #[test]
    fn sbox_budgets() {
        assert_eq!(
            build_alt_netlist(AltArch::Full128, RomStyle::Macro)
                .stats()
                .roms,
            20
        );
        assert_eq!(
            build_alt_netlist(AltArch::All32, RomStyle::Macro)
                .stats()
                .roms,
            8
        );
        assert_eq!(
            build_alt_netlist(AltArch::Serial8, RomStyle::Macro)
                .stats()
                .roms,
            2
        );
    }
}

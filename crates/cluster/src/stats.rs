//! Cluster-wide `GET_STATS` aggregation.
//!
//! Each node answers `GET_STATS` with a `telemetry/1` JSON document.
//! The router scrapes the counters and gauges out of every reachable
//! node's document with plain string surgery (the workspace ships no
//! JSON parser, deliberately — the schema is stable and flat), sums
//! them by name into a fresh [`telemetry::Registry`], adds per-node
//! reachability gauges (`cluster.node.<i>.up`), and re-serializes.
//! The aggregate is therefore itself a well-formed `telemetry/1`
//! document, consumable by everything that already reads single-node
//! snapshots.
//!
//! Histograms are **dropped** in aggregation: bucket-wise summing of
//! per-node latency histograms would silently claim a precision the
//! merged distribution does not have. Counters and gauges sum
//! honestly; distributions do not.

use telemetry::Registry;

/// One scraped instrument value.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scraped {
    /// A monotonic counter.
    Counter(u64),
    /// A last-value gauge (may be negative).
    Gauge(i64),
}

/// Scrapes every counter and gauge out of a `telemetry/1` document.
/// Histogram entries are skipped; anything that does not match the
/// stable serialization shape is ignored rather than guessed at.
#[must_use]
pub fn scrape(json: &str) -> Vec<(String, Scraped)> {
    const NAME: &str = "{\"name\":\"";
    const COUNTER: &str = "\",\"type\":\"counter\",\"value\":";
    const GAUGE: &str = "\",\"type\":\"gauge\",\"value\":";
    let mut out = Vec::new();
    let mut rest = json;
    while let Some(pos) = rest.find(NAME) {
        rest = &rest[pos + NAME.len()..];
        let Some(name_end) = rest.find('"') else {
            break;
        };
        let name = &rest[..name_end];
        let tail = &rest[name_end..];
        if let Some(body) = tail.strip_prefix(COUNTER) {
            if let Some(end) = body.find('}') {
                if let Ok(v) = body[..end].parse::<u64>() {
                    out.push((name.to_string(), Scraped::Counter(v)));
                }
            }
        } else if let Some(body) = tail.strip_prefix(GAUGE) {
            if let Some(end) = body.find('}') {
                if let Ok(v) = body[..end].parse::<i64>() {
                    out.push((name.to_string(), Scraped::Gauge(v)));
                }
            }
        }
        rest = tail;
    }
    out
}

/// Merges per-node documents (one slot per node; `None` = unreachable)
/// into a single `telemetry/1` document: counters and gauges summed by
/// name, plus a `cluster.node.<i>.up` gauge per slot and a
/// `cluster.nodes.reachable` gauge.
#[must_use]
pub fn aggregate(docs: &[Option<String>]) -> String {
    let registry = Registry::new();
    let mut reachable = 0i64;
    for (i, doc) in docs.iter().enumerate() {
        let up = doc.is_some();
        reachable += i64::from(up);
        registry
            .gauge(&format!("cluster.node.{i}.up"))
            .set(i64::from(up));
        if let Some(doc) = doc {
            for (name, value) in scrape(doc) {
                match value {
                    Scraped::Counter(v) => registry.counter(&name).add(v),
                    Scraped::Gauge(v) => {
                        registry.gauge(&name).add(v);
                    }
                }
            }
        }
    }
    registry.gauge("cluster.nodes.reachable").set(reachable);
    registry.snapshot().to_json()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn doc(entries: &str) -> String {
        format!("{{\"schema\":\"telemetry/1\",\"instruments\":[{entries}]}}")
    }

    #[test]
    fn scrape_reads_counters_and_gauges_and_skips_histograms() {
        let json = doc("{\"name\":\"a.hits\",\"type\":\"counter\",\"value\":4},\
             {\"name\":\"a.depth\",\"type\":\"gauge\",\"value\":-1},\
             {\"name\":\"a.lat\",\"type\":\"histogram\",\"count\":2,\"sum\":70,\
              \"mean\":35.000,\"buckets\":[{\"le\":50,\"count\":2},{\"le\":null,\"count\":0}]}");
        let scraped = scrape(&json);
        assert_eq!(
            scraped,
            vec![
                ("a.hits".to_string(), Scraped::Counter(4)),
                ("a.depth".to_string(), Scraped::Gauge(-1)),
            ]
        );
    }

    #[test]
    fn aggregate_sums_by_name_and_reports_reachability() {
        let a = doc(
            "{\"name\":\"service.op.ping.requests\",\"type\":\"counter\",\"value\":3},\
             {\"name\":\"service.connections.active\",\"type\":\"gauge\",\"value\":2}",
        );
        let b = doc("{\"name\":\"service.op.ping.requests\",\"type\":\"counter\",\"value\":5}");
        let merged = aggregate(&[Some(a), None, Some(b)]);
        assert!(merged.starts_with("{\"schema\":\"telemetry/1\""));
        let scraped = scrape(&merged);
        let get = |name: &str| {
            scraped
                .iter()
                .find(|(n, _)| n == name)
                .map(|(_, v)| *v)
                .unwrap_or_else(|| panic!("missing {name} in {merged}"))
        };
        assert_eq!(get("service.op.ping.requests"), Scraped::Counter(8));
        assert_eq!(get("service.connections.active"), Scraped::Gauge(2));
        assert_eq!(get("cluster.node.0.up"), Scraped::Gauge(1));
        assert_eq!(get("cluster.node.1.up"), Scraped::Gauge(0));
        assert_eq!(get("cluster.node.2.up"), Scraped::Gauge(1));
        assert_eq!(get("cluster.nodes.reachable"), Scraped::Gauge(2));
    }

    #[test]
    fn scrape_tolerates_garbage_without_panicking() {
        assert!(scrape("").is_empty());
        assert!(scrape("{\"name\":\"x").is_empty());
        assert!(scrape("{\"name\":\"x\",\"type\":\"counter\",\"value\":notanumber}").is_empty());
    }
}

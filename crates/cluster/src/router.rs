//! The cluster router: N nodes behind one [`Transport`].
//!
//! [`ClusterClient`] turns a fleet of `service` nodes into one logical
//! crypto service. The moving parts:
//!
//! * **placement** — every session gets a label, and the label's home
//!   node comes off a consistent-hash [`HashRing`] filtered by node
//!   state (`Up` / `Draining` / `Down`), so placement is deterministic
//!   and drain-stable;
//! * **key distribution** — each session's raw key crosses the wire to
//!   exactly one node (its first home). That node wraps it under the
//!   per-cluster KEK (`WRAP_KEY` on a KEK-keyed session) and re-keys
//!   itself from the blob (`SET_KEY_WRAPPED`). The router keeps the
//!   blob **chain** — the KEK-wrapped key, plus any caller-supplied
//!   re-wrap blobs — and replays it to re-create the session anywhere:
//!   migration and reconnect move only wrapped material;
//! * **draining** — [`ClusterClient::drain`] marks a node draining (no
//!   new sessions), collects every in-flight pipelined reply from its
//!   sessions (parking them for the caller's `collect_next`), then
//!   re-establishes each session on its ring successor by chain
//!   replay. Nothing accepted is lost; the node can then be stopped;
//! * **failure** — a connection error triggers one reconnect attempt
//!   with chain replay on the same node; if the node stays dead it is
//!   marked `Down` and the call returns the typed
//!   [`ClientError::NodeUnreachable`] instead of a raw I/O error.
//!   Sessions on other nodes are untouched.

use std::collections::BTreeMap;
use std::net::SocketAddr;
use std::thread;
use std::time::Duration;

use service::protocol::{PROTOCOL_V1, PROTOCOL_V2};
use service::{Client, ClientError, Op, PipelinedJob, Transport};

use crate::ring::HashRing;
use crate::stats;

/// Availability of one cluster node, as the router sees it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NodeState {
    /// Accepting new sessions and serving existing ones.
    Up,
    /// Serving existing traffic but closed to new session placement
    /// (set by [`ClusterClient::drain`]).
    Draining,
    /// Unreachable after a failed reconnect; excluded from placement
    /// until [`ClusterClient::restore`].
    Down,
}

/// One node's health sample from [`ClusterClient::poll_health`].
#[derive(Debug, Clone)]
pub struct NodeHealth {
    /// The node's index in the cluster.
    pub node: usize,
    /// The router's availability verdict after this poll.
    pub state: NodeState,
    /// Whether `GET_STATS` answered on this poll.
    pub reachable: bool,
    /// The node's `service.connections.active` gauge, when reachable.
    pub active_connections: Option<i64>,
    /// The node's `service.pipeline.inflight` gauge, when reachable.
    pub inflight: Option<i64>,
}

struct Node {
    addr: SocketAddr,
    state: NodeState,
}

struct SessionEntry {
    /// The node currently holding this session.
    node: usize,
    /// The dedicated connection, already keyed for the session.
    client: Client,
    /// Wrapped-key chain: element 0 is the session key wrapped under
    /// the cluster KEK; each later element was wrapped under the key
    /// the previous element unwraps to (caller re-keys through
    /// `set_key_wrapped`). Replaying KEK ‖ chain on a fresh connection
    /// reconstructs the session without raw key bytes.
    chain: Vec<Vec<u8>>,
    /// Completions collected on the caller's behalf during a drain,
    /// owed to the next `collect_next` calls.
    parked: Vec<PipelinedJob>,
}

/// A fleet of service nodes behind one client. See the [module
/// docs](self) for the design; see [`Transport`] for the API surface.
pub struct ClusterClient {
    nodes: Vec<Node>,
    ring: HashRing,
    kek: Vec<u8>,
    sessions: BTreeMap<u64, SessionEntry>,
    next_label: u64,
    current: Option<u64>,
    version: u8,
}

impl ClusterClient {
    /// Builds a router over `addrs` with the per-cluster KEK, probing
    /// every node with a ping round trip so dead addresses fail fast.
    ///
    /// # Errors
    ///
    /// [`ClientError::Protocol`] for an empty node list or a KEK that
    /// is not an AES key length; [`ClientError::NodeUnreachable`] for
    /// a node that does not answer the probe.
    pub fn connect(addrs: &[SocketAddr], kek: &[u8]) -> Result<ClusterClient, ClientError> {
        Self::connect_version(addrs, kek, PROTOCOL_V2)
    }

    /// [`ClusterClient::connect`] pinned to the version-1 wire format:
    /// every node connection speaks strictly in-order v1, so requests
    /// run inline on the node's event loop (no pipelining). The
    /// compatibility path — and the honest way to benchmark per-node
    /// serial capacity.
    ///
    /// # Errors
    ///
    /// As [`ClusterClient::connect`].
    pub fn connect_v1(addrs: &[SocketAddr], kek: &[u8]) -> Result<ClusterClient, ClientError> {
        Self::connect_version(addrs, kek, PROTOCOL_V1)
    }

    fn connect_version(
        addrs: &[SocketAddr],
        kek: &[u8],
        version: u8,
    ) -> Result<ClusterClient, ClientError> {
        if addrs.is_empty() {
            return Err(ClientError::Protocol(
                "a cluster needs at least one node".into(),
            ));
        }
        if !matches!(kek.len(), 16 | 24 | 32) {
            return Err(ClientError::Protocol(format!(
                "KEK must be 16/24/32 bytes, got {}",
                kek.len()
            )));
        }
        let mut cluster = ClusterClient {
            nodes: addrs
                .iter()
                .map(|&addr| Node {
                    addr,
                    state: NodeState::Up,
                })
                .collect(),
            ring: HashRing::new(addrs.len()),
            kek: kek.to_vec(),
            sessions: BTreeMap::new(),
            next_label: 0,
            current: None,
            version,
        };
        for node in 0..cluster.nodes.len() {
            let mut probe = cluster.connect_node(node)?;
            probe
                .ping(b"cluster-probe")
                .map_err(|_| ClientError::NodeUnreachable { node })?;
        }
        Ok(cluster)
    }

    /// Number of nodes (any state).
    #[must_use]
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// The router's current verdict for `node`.
    #[must_use]
    pub fn node_state(&self, node: usize) -> NodeState {
        self.nodes[node].state
    }

    /// Live sessions across the cluster.
    #[must_use]
    pub fn session_count(&self) -> usize {
        self.sessions.len()
    }

    /// The node currently holding session `label`.
    #[must_use]
    pub fn session_node(&self, label: u64) -> Option<usize> {
        self.sessions.get(&label).map(|e| e.node)
    }

    /// The session Transport calls route to (the most recently opened
    /// or [`ClusterClient::use_session`]-selected one).
    #[must_use]
    pub fn current_session(&self) -> Option<u64> {
        self.current
    }

    /// Routes subsequent Transport calls to session `label`.
    ///
    /// # Errors
    ///
    /// [`ClientError::Protocol`] for an unknown label.
    pub fn use_session(&mut self, label: u64) -> Result<(), ClientError> {
        if !self.sessions.contains_key(&label) {
            return Err(ClientError::Protocol(format!("unknown session {label}")));
        }
        self.current = Some(label);
        Ok(())
    }

    /// One TCP dial at the cluster's pinned wire version.
    fn dial(&self, addr: SocketAddr) -> std::io::Result<Client> {
        if self.version >= PROTOCOL_V2 {
            Client::connect(addr)
        } else {
            Client::connect_v1(addr)
        }
    }

    /// Connects to a node, retrying once; a second failure marks the
    /// node `Down` and surfaces the typed verdict.
    fn connect_node(&mut self, node: usize) -> Result<Client, ClientError> {
        let addr = self.nodes[node].addr;
        if let Ok(client) = self.dial(addr) {
            return Ok(client);
        }
        thread::sleep(Duration::from_millis(50));
        match self.dial(addr) {
            Ok(client) => Ok(client),
            Err(_) => {
                self.nodes[node].state = NodeState::Down;
                Err(ClientError::NodeUnreachable { node })
            }
        }
    }

    /// Connects to `node` and replays KEK ‖ `chain` to reconstruct a
    /// session there. Only wrapped material crosses the wire.
    fn establish(&mut self, node: usize, chain: &[Vec<u8>]) -> Result<Client, ClientError> {
        let mut client = self.connect_node(node)?;
        client.set_key(&self.kek)?;
        for blob in chain {
            client.set_key_wrapped(blob)?;
        }
        Ok(client)
    }

    /// The ring home for `label` among nodes in state `Up`.
    fn place(&self, label: u64) -> Result<usize, ClientError> {
        let nodes = &self.nodes;
        self.ring
            .route_where(label, |n| nodes[n].state == NodeState::Up)
            .ok_or_else(|| ClientError::Protocol("no Up node available for placement".into()))
    }

    /// Opens a new session keyed with `key` and makes it current.
    ///
    /// The raw key crosses the wire exactly once, to the session's
    /// home node: the home wraps it under the KEK (giving the router
    /// the migration blob) and immediately re-keys itself from that
    /// blob. Returns the session label.
    ///
    /// # Errors
    ///
    /// Typed service errors (`BadKeyLength`, ...),
    /// [`ClientError::NodeUnreachable`], or transport failures.
    pub fn open_session(&mut self, key: &[u8]) -> Result<u64, ClientError> {
        let label = self.next_label;
        let node = self.place(label)?;
        let mut client = self.connect_node(node)?;
        // KEK session first: WRAP_KEY under the KEK produces the blob
        // every *other* node will be keyed from.
        client.set_key(&self.kek)?;
        let wrapped = client.wrap_key(key)?;
        // The home node itself re-keys from the blob too — the raw key
        // was only ever SET_KEY'd... never: it rode WRAP_KEY's payload,
        // to this one node, and nowhere else.
        client.set_key_wrapped(&wrapped)?;
        self.next_label += 1;
        self.sessions.insert(
            label,
            SessionEntry {
                node,
                client,
                chain: vec![wrapped],
                parked: Vec::new(),
            },
        );
        self.current = Some(label);
        Ok(label)
    }

    /// Runs `f` against the current session's connection, transparently
    /// retrying once through a reconnect + chain replay on a transport
    /// error. A node that stays dead surfaces as
    /// [`ClientError::NodeUnreachable`].
    fn with_current<R>(
        &mut self,
        f: impl Fn(&mut Client) -> Result<R, ClientError>,
    ) -> Result<R, ClientError> {
        let label = self.current.ok_or_else(|| {
            ClientError::Protocol("no cluster session — call set_key first".into())
        })?;
        let mut entry = self
            .sessions
            .remove(&label)
            .expect("current always names a live session");
        let mut result = f(&mut entry.client);
        if matches!(result, Err(ClientError::Io(_) | ClientError::Recv(_))) {
            match self.establish(entry.node, &entry.chain) {
                Ok(fresh) => {
                    entry.client = fresh;
                    result = f(&mut entry.client);
                }
                Err(e) => {
                    self.sessions.insert(label, entry);
                    return Err(e);
                }
            }
        }
        self.sessions.insert(label, entry);
        result
    }

    /// Drains `node`: marks it `Draining` (no new sessions land
    /// there), then migrates every session it holds to that session's
    /// ring successor — in-flight pipelined replies are collected
    /// first (and parked for `collect_next`), the successor is keyed
    /// by chain replay, and the old connection is dropped. Returns how
    /// many sessions moved.
    ///
    /// # Errors
    ///
    /// Typed service errors or [`ClientError::NodeUnreachable`] from
    /// the successor; the drain stops at the first failure with the
    /// remaining sessions still on the draining node.
    pub fn drain(&mut self, node: usize) -> Result<usize, ClientError> {
        self.nodes[node].state = NodeState::Draining;
        let homed: Vec<u64> = self
            .sessions
            .iter()
            .filter(|(_, e)| e.node == node)
            .map(|(&label, _)| label)
            .collect();
        let mut moved = 0;
        for label in homed {
            let mut entry = self
                .sessions
                .remove(&label)
                .expect("label collected from the live map");
            // Nothing accepted may be lost: pull every in-flight
            // pipelined completion off the old connection before it
            // goes away.
            match entry.client.collect_all() {
                Ok(jobs) => entry.parked.extend(jobs),
                Err(e) => {
                    self.sessions.insert(label, entry);
                    return Err(e);
                }
            }
            let target = match self.place(label) {
                Ok(t) => t,
                Err(e) => {
                    self.sessions.insert(label, entry);
                    return Err(e);
                }
            };
            match self.establish(target, &entry.chain) {
                Ok(fresh) => {
                    entry.client = fresh;
                    entry.node = target;
                    moved += 1;
                    self.sessions.insert(label, entry);
                }
                Err(e) => {
                    self.sessions.insert(label, entry);
                    return Err(e);
                }
            }
        }
        Ok(moved)
    }

    /// Returns a `Down` or `Draining` node to placement rotation.
    /// Existing sessions stay where they are; the ring simply starts
    /// offering the node to new labels again.
    pub fn restore(&mut self, node: usize) {
        self.nodes[node].state = NodeState::Up;
    }

    /// Polls every non-`Down` node's `GET_STATS` over a transient
    /// connection: reachability, the active-connection gauge and the
    /// pipeline-inflight gauge. A node that does not answer is marked
    /// `Down` (a `Draining` node that answers stays `Draining`).
    #[must_use]
    pub fn poll_health(&mut self) -> Vec<NodeHealth> {
        let mut out = Vec::with_capacity(self.nodes.len());
        for node in 0..self.nodes.len() {
            let mut reachable = false;
            let mut active = None;
            let mut inflight = None;
            if self.nodes[node].state != NodeState::Down {
                if let Ok(mut probe) = self.dial(self.nodes[node].addr) {
                    if let Ok(json) = probe.stats() {
                        reachable = true;
                        for (name, value) in stats::scrape(&json) {
                            if let stats::Scraped::Gauge(v) = value {
                                match name.as_str() {
                                    "service.connections.active" => active = Some(v),
                                    "service.pipeline.inflight" => inflight = Some(v),
                                    _ => {}
                                }
                            }
                        }
                    }
                }
                if !reachable {
                    self.nodes[node].state = NodeState::Down;
                }
            }
            out.push(NodeHealth {
                node,
                state: self.nodes[node].state,
                reachable,
                active_connections: active,
                inflight,
            });
        }
        out
    }

    /// Fetches and merges every reachable node's `GET_STATS` document
    /// (see [`stats::aggregate`] for the merge semantics).
    ///
    /// # Errors
    ///
    /// Never fails outright — unreachable nodes appear as
    /// `cluster.node.<i>.up = 0` — but the signature stays fallible to
    /// match the `Transport` surface.
    pub fn aggregated_stats(&mut self) -> Result<String, ClientError> {
        let docs: Vec<Option<String>> = (0..self.nodes.len())
            .map(|node| {
                if self.nodes[node].state == NodeState::Down {
                    return None;
                }
                self.dial(self.nodes[node].addr)
                    .ok()
                    .and_then(|mut probe| probe.stats().ok())
            })
            .collect();
        Ok(stats::aggregate(&docs))
    }

    /// A connection to any `Up` node for session-less ops (ping).
    fn any_up(&mut self) -> Result<Client, ClientError> {
        let candidates: Vec<usize> = (0..self.nodes.len())
            .filter(|&n| self.nodes[n].state == NodeState::Up)
            .collect();
        for node in candidates {
            if let Ok(client) = self.dial(self.nodes[node].addr) {
                return Ok(client);
            }
        }
        Err(ClientError::Protocol("no Up node reachable".into()))
    }
}

impl std::fmt::Debug for ClusterClient {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ClusterClient")
            .field("nodes", &self.nodes.len())
            .field("sessions", &self.sessions.len())
            .field("current", &self.current)
            .finish_non_exhaustive()
    }
}

impl Transport for ClusterClient {
    /// Opens a **new cluster session** (placement, KEK wrap, re-key)
    /// and makes it current — the cluster analogue of a fresh
    /// `SET_KEY`. Returns the home node's wire session id.
    fn set_key(&mut self, key: &[u8]) -> Result<u32, ClientError> {
        let label = self.open_session(key)?;
        Ok(self.sessions[&label].client.session())
    }

    fn set_key_wrapped(&mut self, wrapped: &[u8]) -> Result<u32, ClientError> {
        let sid = self.with_current(|c| c.set_key_wrapped(wrapped))?;
        let label = self.current.expect("with_current verified this");
        if let Some(entry) = self.sessions.get_mut(&label) {
            // Extend the chain so migration can replay the re-key.
            entry.chain.push(wrapped.to_vec());
        }
        Ok(sid)
    }

    fn ping(&mut self, payload: &[u8]) -> Result<Vec<u8>, ClientError> {
        if self.current.is_some() {
            self.with_current(|c| c.ping(payload))
        } else {
            self.any_up()?.ping(payload)
        }
    }

    fn ecb_encrypt(&mut self, plaintext: &[u8]) -> Result<Vec<u8>, ClientError> {
        self.with_current(|c| c.ecb_encrypt(plaintext))
    }

    fn ecb_decrypt(&mut self, ciphertext: &[u8]) -> Result<Vec<u8>, ClientError> {
        self.with_current(|c| c.ecb_decrypt(ciphertext))
    }

    fn cbc_encrypt(&mut self, iv: &[u8; 16], plaintext: &[u8]) -> Result<Vec<u8>, ClientError> {
        self.with_current(|c| c.cbc_encrypt(iv, plaintext))
    }

    fn cbc_decrypt(&mut self, iv: &[u8; 16], ciphertext: &[u8]) -> Result<Vec<u8>, ClientError> {
        self.with_current(|c| c.cbc_decrypt(iv, ciphertext))
    }

    fn ctr_apply(&mut self, counter: &[u8; 16], data: &[u8]) -> Result<Vec<u8>, ClientError> {
        self.with_current(|c| c.ctr_apply(counter, data))
    }

    fn cmac_tag(&mut self, message: &[u8]) -> Result<[u8; 16], ClientError> {
        self.with_current(|c| c.cmac_tag(message))
    }

    fn cmac_verify(&mut self, message: &[u8], tag: &[u8; 16]) -> Result<bool, ClientError> {
        self.with_current(|c| c.cmac_verify(message, tag))
    }

    fn seal(
        &mut self,
        nonce: &[u8; 12],
        aad: &[u8],
        plaintext: &[u8],
    ) -> Result<Vec<u8>, ClientError> {
        self.with_current(|c| c.seal(nonce, aad, plaintext))
    }

    fn open(
        &mut self,
        nonce: &[u8; 12],
        aad: &[u8],
        sealed: &[u8],
    ) -> Result<Option<Vec<u8>>, ClientError> {
        self.with_current(|c| c.open(nonce, aad, sealed))
    }

    fn wrap_key(&mut self, key_data: &[u8]) -> Result<Vec<u8>, ClientError> {
        self.with_current(|c| c.wrap_key(key_data))
    }

    fn unwrap_key(&mut self, wrapped: &[u8]) -> Result<Option<Vec<u8>>, ClientError> {
        self.with_current(|c| c.unwrap_key(wrapped))
    }

    fn xts_encrypt(
        &mut self,
        sector_base: u64,
        sector_size: u32,
        data: &[u8],
    ) -> Result<Vec<u8>, ClientError> {
        self.with_current(|c| c.xts_encrypt(sector_base, sector_size, data))
    }

    fn xts_decrypt(
        &mut self,
        sector_base: u64,
        sector_size: u32,
        data: &[u8],
    ) -> Result<Vec<u8>, ClientError> {
        self.with_current(|c| c.xts_decrypt(sector_base, sector_size, data))
    }

    /// Cluster-wide: the merged `telemetry/1` document across all
    /// reachable nodes, not one node's snapshot.
    fn stats(&mut self) -> Result<String, ClientError> {
        self.aggregated_stats()
    }

    fn pipeline(&mut self, op: Op, iv: Option<&[u8; 16]>, data: &[u8]) -> Result<u32, ClientError> {
        self.with_current(|c| c.pipeline(op, iv, data))
    }

    fn collect_next(&mut self) -> Result<PipelinedJob, ClientError> {
        if let Some(label) = self.current {
            if let Some(entry) = self.sessions.get_mut(&label) {
                if !entry.parked.is_empty() {
                    // Completions rescued during a drain come first, in
                    // their original arrival order.
                    return Ok(entry.parked.remove(0));
                }
            }
        }
        self.with_current(|c| c.collect_next())
    }

    fn collect_all(&mut self) -> Result<Vec<PipelinedJob>, ClientError> {
        let mut jobs = Vec::new();
        if let Some(label) = self.current {
            if let Some(entry) = self.sessions.get_mut(&label) {
                jobs.append(&mut entry.parked);
            }
        }
        jobs.extend(self.with_current(|c| c.collect_all())?);
        Ok(jobs)
    }

    fn in_flight(&self) -> usize {
        let Some(label) = self.current else { return 0 };
        self.sessions
            .get(&label)
            .map_or(0, |e| e.parked.len() + e.client.in_flight())
    }
}

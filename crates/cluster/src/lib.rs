//! Sharded multi-node cluster behind one client.
//!
//! This crate turns N independent `service` processes into one logical
//! crypto service, entirely client-side — the nodes need no knowledge
//! of each other, no gossip and no shared state. The pieces:
//!
//! * [`ring`] — consistent-hash placement with virtual nodes: balanced,
//!   deterministic, and drain-stable (removing a node only remaps the
//!   sessions it held);
//! * [`router`] — [`ClusterClient`], the one-client façade implementing
//!   [`service::Transport`]: session placement, wrapped-key
//!   distribution (a raw session key reaches exactly one node; every
//!   other node is keyed from a KEK-wrapped blob), drain/migration
//!   without losing accepted work, typed `NodeUnreachable` failure, and
//!   `GET_STATS`-driven health supervision;
//! * [`stats`] — cluster-wide `GET_STATS` aggregation into a single
//!   `telemetry/1` document;
//! * [`node`] — running and supervising node child processes (the
//!   `cluster_node` binary, handshake parsing, SIGKILL for node-loss
//!   tests).
//!
//! Everything is std-only and hermetic: tests and benches spawn real
//! node processes on loopback ephemeral ports.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod node;
pub mod ring;
pub mod router;
pub mod stats;

pub use node::{run_node, NodeProcess, LISTENING_PREFIX};
pub use ring::HashRing;
pub use router::{ClusterClient, NodeHealth, NodeState};

//! Consistent-hash ring with virtual nodes.
//!
//! Sessions are placed on nodes by hashing their label onto a ring of
//! `nodes × vnodes` points and walking clockwise to the first point
//! whose node is available. Two properties matter and both are tested
//! here:
//!
//! * **balance** — with enough virtual nodes, each physical node owns
//!   a near-equal arc of the ring, so session counts stay close to
//!   uniform without any coordination;
//! * **stability** — removing one node only remaps the labels that
//!   node owned; every other label keeps its home. That is what makes
//!   draining cheap: the ring itself tells the router which sessions
//!   move and, crucially, which sessions don't.
//!
//! The hash is splitmix64 — tiny, seedless, and good enough avalanche
//! for placement (this is load balancing, not cryptography; the keys
//! the ring places are protected by the wrap layer, not by the hash).

/// splitmix64: the 64-bit finalizer from Vigna's splitmix generator.
/// Full avalanche, zero state, no allocation — exactly what placement
/// hashing needs.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Domain separation between label hashes and ring-point hashes.
/// Without it, label `L` hashes to the *same* value as node 0's vnode
/// `L` point (both are `splitmix64(L)` for `L < 2^32`), so every small
/// sequential label would land exactly on — and route to — node 0.
const LABEL_SALT: u64 = 0xD1B5_4A32_D192_ED03;

/// A consistent-hash ring over `nodes` physical nodes.
#[derive(Debug, Clone)]
pub struct HashRing {
    /// `(point, node)` sorted by point; each node contributes `vnodes`
    /// points.
    points: Vec<(u64, usize)>,
    nodes: usize,
}

impl HashRing {
    /// Virtual nodes per physical node: enough for single-digit-percent
    /// balance spread across a handful of nodes, small enough that the
    /// ring stays a cache-resident array.
    pub const DEFAULT_VNODES: usize = 64;

    /// Builds the ring for `nodes` physical nodes with
    /// [`HashRing::DEFAULT_VNODES`] points each.
    #[must_use]
    pub fn new(nodes: usize) -> HashRing {
        Self::with_vnodes(nodes, Self::DEFAULT_VNODES)
    }

    /// Builds the ring with an explicit virtual-node count (at least 1
    /// is forced: a node with no points could never be routed to).
    #[must_use]
    pub fn with_vnodes(nodes: usize, vnodes: usize) -> HashRing {
        let vnodes = vnodes.max(1);
        let mut points = Vec::with_capacity(nodes * vnodes);
        for node in 0..nodes {
            for vnode in 0..vnodes {
                // Mix node and vnode into one 64-bit input; the high
                // word keeps (node, vnode) pairs collision-free.
                let point = splitmix64(((node as u64) << 32) | vnode as u64);
                points.push((point, node));
            }
        }
        points.sort_unstable();
        HashRing { points, nodes }
    }

    /// Physical nodes the ring was built over.
    #[must_use]
    pub fn nodes(&self) -> usize {
        self.nodes
    }

    /// Routes `label` to its home node: the first ring point at or
    /// clockwise-after the label's hash.
    #[must_use]
    pub fn route(&self, label: u64) -> Option<usize> {
        self.route_where(label, |_| true)
    }

    /// Routes `label` to the first node, walking clockwise from the
    /// label's hash, that satisfies `available` — the draining/down
    /// filter. Returns `None` when no node qualifies.
    pub fn route_where(&self, label: u64, available: impl Fn(usize) -> bool) -> Option<usize> {
        if self.points.is_empty() {
            return None;
        }
        let hash = splitmix64(label ^ LABEL_SALT);
        let start = self.points.partition_point(|&(p, _)| p < hash);
        // One full lap, wrapping at the top of the ring.
        for i in 0..self.points.len() {
            let (_, node) = self.points[(start + i) % self.points.len()];
            if available(node) {
                return Some(node);
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    #[test]
    fn every_label_routes_and_balance_is_within_bounds() {
        let ring = HashRing::new(3);
        let mut counts: HashMap<usize, usize> = HashMap::new();
        let labels = 30_000u64;
        for label in 0..labels {
            let node = ring.route(label).expect("non-empty ring routes");
            assert!(node < 3);
            *counts.entry(node).or_default() += 1;
        }
        // Perfect balance would be 10 000 each; with 64 vnodes the
        // spread stays well inside ±40% (empirically ±10%, but the
        // assertion leaves slack so a rehash never turns this flaky).
        for node in 0..3 {
            let share = counts[&node];
            assert!(
                (6_000..=14_000).contains(&share),
                "node {node} owns {share} of {labels} labels"
            );
        }
    }

    #[test]
    fn removing_a_node_only_remaps_that_nodes_labels() {
        let ring = HashRing::new(3);
        let mut moved = 0usize;
        for label in 0..10_000u64 {
            let home = ring.route(label).unwrap();
            let rerouted = ring.route_where(label, |n| n != 2).unwrap();
            if home == 2 {
                // This label must move, and to a surviving node.
                assert_ne!(rerouted, 2);
                moved += 1;
            } else {
                // Stability: labels not on the removed node stay put.
                assert_eq!(rerouted, home, "label {label} moved needlessly");
            }
        }
        // The removed node's share actually existed.
        assert!(moved > 1_000, "only {moved} labels lived on node 2");
    }

    #[test]
    fn small_sequential_labels_do_not_all_collide_onto_node_zero() {
        // Regression: without domain separation, splitmix64(label) for
        // label < vnodes equals node 0's own ring points, pinning every
        // early session to node 0.
        let ring = HashRing::new(3);
        let mut hit: [bool; 3] = [false; 3];
        for label in 0..24u64 {
            hit[ring.route(label).unwrap()] = true;
        }
        assert_eq!(hit, [true; 3], "labels 0..24 left a node empty");
    }

    #[test]
    fn routing_is_deterministic_across_ring_rebuilds() {
        let a = HashRing::new(5);
        let b = HashRing::new(5);
        for label in 0..1_000u64 {
            assert_eq!(a.route(label), b.route(label));
        }
    }

    #[test]
    fn degenerate_rings_answer_honestly() {
        assert_eq!(HashRing::new(0).route(7), None);
        let one = HashRing::new(1);
        assert_eq!(one.route(7), Some(0));
        assert_eq!(one.route_where(7, |_| false), None);
    }
}

//! Running and supervising cluster node processes.
//!
//! A cluster node is just a `service::Server` in its own process. Two
//! pieces live here:
//!
//! * [`run_node`] — the in-process body of a node: spawn the server,
//!   print the `CLUSTER_NODE_LISTENING <addr>` handshake line on
//!   stdout, then park until stdin reaches EOF (the parent closing the
//!   pipe — or dying — is the shutdown signal, so orphaned nodes clean
//!   themselves up). The `cluster_node` binary is a thin wrapper over
//!   this; the bench re-execs itself with a flag and calls the same
//!   function, keeping everything hermetic.
//! * [`NodeProcess`] — the parent side: spawn a command, wait for the
//!   handshake line, expose the address, and kill the child on drop
//!   (or via [`NodeProcess::kill`] for deliberate node-loss tests —
//!   that is SIGKILL, the no-goodbye failure mode the router must
//!   survive).

use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::SocketAddr;
use std::process::{Child, Command, Stdio};

use service::{Server, ServiceConfig};

/// The stdout handshake prefix a node prints once its listener is
/// bound.
pub const LISTENING_PREFIX: &str = "CLUSTER_NODE_LISTENING ";

/// Runs a node to completion: spawns the server on `listen` (use
/// `127.0.0.1:0` for an ephemeral port), prints the handshake line,
/// then blocks until stdin hits EOF and shuts the server down.
///
/// # Errors
///
/// Propagates bind failures and stdout write failures.
pub fn run_node(config: ServiceConfig, listen: &str) -> io::Result<()> {
    let handle = Server::new(config).spawn(listen)?;
    let mut stdout = io::stdout().lock();
    writeln!(stdout, "{LISTENING_PREFIX}{}", handle.local_addr())?;
    stdout.flush()?;
    // Park until the parent closes our stdin (or exits, which closes
    // it too). Reading to EOF needs no signal handling and no timers.
    let mut sink = Vec::new();
    let _ = io::stdin().lock().read_to_end(&mut sink);
    handle.shutdown();
    Ok(())
}

/// A supervised child node process.
#[derive(Debug)]
pub struct NodeProcess {
    child: Child,
    addr: SocketAddr,
}

impl NodeProcess {
    /// Spawns `command` (already argued to run a node), pipes its
    /// stdin/stdout, and blocks until the handshake line arrives.
    ///
    /// # Errors
    ///
    /// Spawn failures, or a child that exits / prints something other
    /// than the handshake first.
    pub fn spawn(mut command: Command) -> io::Result<NodeProcess> {
        command.stdin(Stdio::piped()).stdout(Stdio::piped());
        let mut child = command.spawn()?;
        let stdout = child.stdout.take().expect("stdout was piped");
        let mut lines = BufReader::new(stdout).lines();
        let addr = loop {
            let Some(line) = lines.next() else {
                let _ = child.kill();
                let _ = child.wait();
                return Err(io::Error::other("node exited before its handshake line"));
            };
            let line = line?;
            if let Some(rest) = line.strip_prefix(LISTENING_PREFIX) {
                break rest.trim().parse::<SocketAddr>().map_err(|e| {
                    io::Error::other(format!("unparseable node address {rest:?}: {e}"))
                })?;
            }
            // Anything else on stdout (cargo noise, diagnostics) is
            // skipped, not fatal — only silence or EOF is.
        };
        Ok(NodeProcess { child, addr })
    }

    /// The node's listening address.
    #[must_use]
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Kills the node without any goodbye (SIGKILL on Unix) and reaps
    /// it. This is the node-loss failure mode: in-flight requests are
    /// simply gone.
    pub fn kill(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }

    /// Asks the node to shut down cleanly by closing its stdin, then
    /// waits for it to exit.
    pub fn shutdown(mut self) {
        drop(self.child.stdin.take());
        let _ = self.child.wait();
    }
}

impl Drop for NodeProcess {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

//! One cluster node as a standalone process.
//!
//! Usage: `cluster_node [LISTEN_ADDR]` (default `127.0.0.1:0`).
//! Prints `CLUSTER_NODE_LISTENING <addr>` on stdout once bound, then
//! runs until stdin reaches EOF. See [`rijndael_cluster::node::run_node`].

use std::process::ExitCode;

use service::ServiceConfig;

fn main() -> ExitCode {
    let listen = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "127.0.0.1:0".to_string());
    let config = ServiceConfig::default();
    match rijndael_cluster::run_node(config, &listen) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("cluster_node: {e}");
            ExitCode::FAILURE
        }
    }
}

//! End-to-end cluster tests: real `service` nodes (in-process handles
//! and real child processes), real sockets, one [`ClusterClient`].
//!
//! The load-bearing assertions:
//!
//! * the **same KAT conversation** passes through a plain [`Client`]
//!   and through a 3-node [`ClusterClient`], both as `&mut dyn
//!   Transport` — the cluster is a drop-in transport, not a lookalike;
//! * draining a node under pipelined load **loses nothing** and the
//!   migrated session keeps producing the same CTR stream — the key
//!   really moved;
//! * a byte-sniffing proxy in front of every node proves the **raw
//!   session key crossed the wire to exactly one node**; the migration
//!   target saw only wrapped material;
//! * SIGKILL-ing a node makes only *that node's* sessions fail, with
//!   the typed [`ClientError::NodeUnreachable`] verdict.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::process::Command;
use std::sync::{Arc, Mutex};
use std::thread;

use rijndael_cluster::{ClusterClient, NodeProcess, NodeState};
use service::{Client, ClientError, Op, Server, ServiceConfig, ServiceHandle, Transport};

const KEK: [u8; 16] = *b"cluster-kek-0123";

fn spawn_nodes(n: usize) -> (Vec<ServiceHandle>, Vec<SocketAddr>) {
    let mut handles = Vec::with_capacity(n);
    let mut addrs = Vec::with_capacity(n);
    for _ in 0..n {
        let config = ServiceConfig::builder().build().expect("default config");
        let handle = Server::new(config)
            .spawn("127.0.0.1:0")
            .expect("bind node on loopback");
        addrs.push(handle.local_addr());
        handles.push(handle);
    }
    (handles, addrs)
}

/// The shared conversation both transports must pass verbatim: FIPS-197
/// ECB known answer, CBC/CTR/XTS roundtrips, CMAC, GCM seal/open, key
/// wrap, ping.
fn kat_conversation(t: &mut dyn Transport) {
    let key: [u8; 16] = (0..16).collect::<Vec<u8>>().try_into().unwrap();
    t.set_key(&key).expect("session opens");

    // FIPS-197 appendix C.1.
    let pt = [
        0x00, 0x11, 0x22, 0x33, 0x44, 0x55, 0x66, 0x77, 0x88, 0x99, 0xaa, 0xbb, 0xcc, 0xdd, 0xee,
        0xff,
    ];
    let ct = t.ecb_encrypt(&pt).expect("ecb");
    assert_eq!(
        ct,
        [
            0x69, 0xc4, 0xe0, 0xd8, 0x6a, 0x7b, 0x04, 0x30, 0xd8, 0xcd, 0xb7, 0x80, 0x70, 0xb4,
            0xc5, 0x5a
        ]
    );
    assert_eq!(t.ecb_decrypt(&ct).expect("ecb dec"), pt);

    let iv = [7u8; 16];
    let msg = [0x5au8; 48];
    let cbc = t.cbc_encrypt(&iv, &msg).expect("cbc enc");
    assert_eq!(t.cbc_decrypt(&iv, &cbc).expect("cbc dec"), msg);

    let ctr0 = [1u8; 16];
    let stream = t.ctr_apply(&ctr0, b"ctr is an involution").expect("ctr");
    assert_eq!(
        t.ctr_apply(&ctr0, &stream).expect("ctr back"),
        b"ctr is an involution"
    );

    let tag = t.cmac_tag(b"authenticate me").expect("cmac");
    assert!(t.cmac_verify(b"authenticate me", &tag).expect("cmac ok"));
    assert!(!t.cmac_verify(b"authenticate ME", &tag).expect("cmac bad"));

    let nonce = [9u8; 12];
    let sealed = t.seal(&nonce, b"aad", b"secret payload").expect("seal");
    assert_eq!(
        t.open(&nonce, b"aad", &sealed).expect("open"),
        Some(b"secret payload".to_vec())
    );
    assert_eq!(
        t.open(&nonce, b"tampered", &sealed).expect("open bad"),
        None
    );

    let inner = [0x42u8; 16];
    let wrapped = t.wrap_key(&inner).expect("wrap");
    assert_eq!(
        t.unwrap_key(&wrapped).expect("unwrap"),
        Some(inner.to_vec())
    );

    let sectors = vec![0xA5u8; 3 * 32];
    let xts = t.xts_encrypt(10, 32, &sectors).expect("xts enc");
    assert_ne!(xts, sectors);
    assert_eq!(t.xts_decrypt(10, 32, &xts).expect("xts dec"), sectors);

    assert_eq!(t.ping(b"hello?").expect("ping"), b"hello?");
}

#[test]
fn the_same_kat_suite_passes_through_client_and_cluster() {
    let (handles, addrs) = spawn_nodes(3);

    let mut single = Client::connect(addrs[0]).expect("direct client connects");
    kat_conversation(&mut single);

    let mut fleet = ClusterClient::connect(&addrs, &KEK).expect("cluster connects");
    kat_conversation(&mut fleet);

    drop(fleet);
    drop(single);
    for handle in handles {
        handle.shutdown();
    }
}

#[test]
fn sessions_spread_across_all_nodes() {
    let (handles, addrs) = spawn_nodes(3);
    let mut fleet = ClusterClient::connect(&addrs, &KEK).expect("cluster connects");

    let mut counts = [0usize; 3];
    for i in 0..24u8 {
        let key = [i; 16];
        let label = fleet.open_session(&key).expect("session opens");
        counts[fleet.session_node(label).expect("placed")] += 1;
    }
    assert_eq!(fleet.session_count(), 24);
    for (node, &share) in counts.iter().enumerate() {
        assert!(share > 0, "node {node} received no sessions: {counts:?}");
    }

    drop(fleet);
    for handle in handles {
        handle.shutdown();
    }
}

/// A byte-sniffing TCP proxy: forwards loopback connections to
/// `backend` and records every client→backend byte.
struct TapProxy {
    addr: SocketAddr,
    upstream: Arc<Mutex<Vec<u8>>>,
}

impl TapProxy {
    fn spawn(backend: SocketAddr) -> TapProxy {
        let listener = TcpListener::bind("127.0.0.1:0").expect("proxy binds");
        let addr = listener.local_addr().expect("proxy addr");
        let upstream = Arc::new(Mutex::new(Vec::new()));
        let tap = Arc::clone(&upstream);
        thread::spawn(move || {
            for conn in listener.incoming() {
                let Ok(client) = conn else { break };
                let Ok(server) = TcpStream::connect(backend) else {
                    continue;
                };
                let tap = Arc::clone(&tap);
                let (mut c_read, mut s_write) = (
                    client.try_clone().expect("clone"),
                    server.try_clone().expect("clone"),
                );
                thread::spawn(move || {
                    let mut buf = [0u8; 4096];
                    while let Ok(n) = c_read.read(&mut buf) {
                        if n == 0 {
                            break;
                        }
                        tap.lock().expect("tap lock").extend_from_slice(&buf[..n]);
                        if s_write.write_all(&buf[..n]).is_err() {
                            break;
                        }
                    }
                    let _ = s_write.shutdown(std::net::Shutdown::Write);
                });
                let (mut s_read, mut c_write) = (server, client);
                thread::spawn(move || {
                    let mut buf = [0u8; 4096];
                    while let Ok(n) = s_read.read(&mut buf) {
                        if n == 0 {
                            break;
                        }
                        if c_write.write_all(&buf[..n]).is_err() {
                            break;
                        }
                    }
                    let _ = c_write.shutdown(std::net::Shutdown::Write);
                });
            }
        });
        TapProxy { addr, upstream }
    }

    fn saw(&self, needle: &[u8]) -> bool {
        let bytes = self.upstream.lock().expect("tap lock");
        bytes.windows(needle.len()).any(|w| w == needle)
    }
}

/// SP 800-38A §B.1 standard incrementing function on a whole counter
/// block, advanced `blocks` times.
fn advance_counter(mut ctr: [u8; 16], blocks: u64) -> [u8; 16] {
    for _ in 0..blocks {
        for byte in ctr.iter_mut().rev() {
            let (next, carry) = byte.overflowing_add(1);
            *byte = next;
            if !carry {
                break;
            }
        }
    }
    ctr
}

#[test]
fn drain_migrates_sessions_without_losing_work_or_resending_raw_keys() {
    let (handles, node_addrs) = spawn_nodes(3);
    let proxies: Vec<TapProxy> = node_addrs.iter().map(|&a| TapProxy::spawn(a)).collect();
    let proxy_addrs: Vec<SocketAddr> = proxies.iter().map(|p| p.addr).collect();

    let mut fleet = ClusterClient::connect(&proxy_addrs, &KEK).expect("cluster connects");

    // A distinctive raw key the taps can search for.
    let raw_key: [u8; 16] = *b"\xDE\xAD\xBE\xEF raw key! \xCA\xFE";
    let label = fleet.open_session(&raw_key).expect("session opens");
    let home = fleet.session_node(label).expect("session placed");

    // First half of a CTR stream before the drain.
    let ctr0 = [0x10u8; 16];
    let chunk_a = [0x33u8; 64];
    let chunk_b = [0x44u8; 64];
    let ct_a = fleet.ctr_apply(&ctr0, &chunk_a).expect("pre-drain ctr");

    // Pipelined work in flight across the drain.
    let depth = 12u32;
    let mut corrs = Vec::new();
    for _ in 0..depth {
        corrs.push(
            fleet
                .pipeline(Op::EcbEncrypt, None, &[0u8; 16])
                .expect("pipeline submits"),
        );
    }
    assert_eq!(fleet.in_flight(), depth as usize);

    let moved = fleet.drain(home).expect("drain succeeds");
    assert_eq!(moved, 1, "the one session on the drained node migrates");
    assert_eq!(fleet.node_state(home), NodeState::Draining);
    let target = fleet.session_node(label).expect("still placed");
    assert_ne!(target, home, "session left the draining node");

    // Zero loss: every accepted pipelined job is delivered, once.
    let mut jobs = fleet.collect_all().expect("collect parked work");
    jobs.sort_by_key(|j| j.corr);
    let delivered: Vec<u32> = jobs.iter().map(|j| j.corr).collect();
    let mut expected = corrs.clone();
    expected.sort_unstable();
    assert_eq!(delivered, expected, "drain dropped or duplicated jobs");
    for job in &jobs {
        job.result.as_ref().expect("job completed ok");
    }
    assert_eq!(fleet.in_flight(), 0);

    // Key continuity: the second half of the CTR stream, produced by
    // the migrated session, matches an uninterrupted reference stream
    // under the same raw key on an untouched node.
    let ctr_b = advance_counter(ctr0, (chunk_a.len() / 16) as u64);
    let ct_b = fleet.ctr_apply(&ctr_b, &chunk_b).expect("post-drain ctr");
    let mut reference = Client::connect(node_addrs[target]).expect("reference client");
    reference.set_key(&raw_key).expect("reference key");
    let mut whole = chunk_a.to_vec();
    whole.extend_from_slice(&chunk_b);
    let ct_whole = reference.ctr_apply(&ctr0, &whole).expect("reference ctr");
    let mut spliced = ct_a.clone();
    spliced.extend_from_slice(&ct_b);
    assert_eq!(
        spliced, ct_whole,
        "migrated session does not continue the CTR stream"
    );

    // New sessions avoid the draining node...
    for i in 0..8u8 {
        let fresh = fleet.open_session(&[0x80 | i; 16]).expect("fresh session");
        assert_ne!(fleet.session_node(fresh), Some(home));
    }
    // ...until it is restored.
    fleet.restore(home);
    assert_eq!(fleet.node_state(home), NodeState::Up);

    // The raw session key crossed the wire to the home node only; the
    // migration target saw nothing but wrapped material. (The drained
    // session kept working there, so the target's tap is not empty.)
    assert!(
        proxies[home].saw(&raw_key),
        "home node never received the raw key it was meant to wrap"
    );
    for (i, proxy) in proxies.iter().enumerate() {
        if i != home {
            assert!(
                !proxy.saw(&raw_key),
                "raw session key leaked to node {i} (home was {home})"
            );
        }
    }
    assert!(
        !proxies[target].upstream.lock().expect("tap").is_empty(),
        "migration target saw no traffic at all"
    );

    drop(fleet);
    for handle in handles {
        handle.shutdown();
    }
}

#[test]
fn killing_a_node_fails_only_its_sessions_with_a_typed_verdict() {
    let exe = env!("CARGO_BIN_EXE_cluster_node");
    let mut nodes: Vec<NodeProcess> = (0..3)
        .map(|_| NodeProcess::spawn(Command::new(exe)).expect("node process starts"))
        .collect();
    let addrs: Vec<SocketAddr> = nodes.iter().map(|n| n.addr()).collect();

    let mut fleet = ClusterClient::connect(&addrs, &KEK).expect("cluster connects");

    // Open sessions until at least two nodes hold one.
    let mut labels = Vec::new();
    for i in 0..12u8 {
        labels.push(fleet.open_session(&[i + 1; 16]).expect("session opens"));
    }
    let victim = fleet.session_node(labels[0]).expect("placed");
    let survivor_label = *labels
        .iter()
        .find(|&&l| fleet.session_node(l) != Some(victim))
        .expect("12 sessions never all land on one of 3 nodes");

    nodes[victim].kill();

    // The victim's session fails with the typed verdict...
    fleet.use_session(labels[0]).expect("known label");
    let err = fleet
        .ecb_encrypt(&[0u8; 16])
        .expect_err("dead node cannot answer");
    match err {
        ClientError::NodeUnreachable { node } => assert_eq!(node, victim),
        other => panic!("expected NodeUnreachable, got {other:?}"),
    }
    assert_eq!(fleet.node_state(victim), NodeState::Down);

    // ...while sessions on surviving nodes keep working,
    fleet.use_session(survivor_label).expect("known label");
    let ct = fleet
        .ecb_encrypt(&[0u8; 16])
        .expect("survivor still serves");
    assert_eq!(ct.len(), 16);

    // and new sessions route around the corpse.
    let fresh = fleet
        .open_session(&[0x77; 16])
        .expect("placement avoids Down");
    assert_ne!(fleet.session_node(fresh), Some(victim));

    drop(fleet);
    for node in &mut nodes {
        node.kill();
    }
}

#[test]
fn cluster_stats_aggregate_every_nodes_counters() {
    let (handles, addrs) = spawn_nodes(3);
    let mut fleet = ClusterClient::connect(&addrs, &KEK).expect("cluster connects");

    // Put one session's worth of traffic on every node by opening
    // enough sessions to cover the ring.
    for i in 0..12u8 {
        fleet.open_session(&[i + 40; 16]).expect("session opens");
        fleet.ping(b"load").expect("ping");
    }

    let merged = fleet.stats().expect("aggregate stats");
    assert!(merged.starts_with("{\"schema\":\"telemetry/1\""));
    let scraped = rijndael_cluster::stats::scrape(&merged);
    let get = |name: &str| {
        scraped
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| *v)
            .unwrap_or_else(|| panic!("missing {name}"))
    };
    assert_eq!(
        get("cluster.nodes.reachable"),
        rijndael_cluster::stats::Scraped::Gauge(3)
    );
    for node in 0..3 {
        assert_eq!(
            get(&format!("cluster.node.{node}.up")),
            rijndael_cluster::stats::Scraped::Gauge(1)
        );
    }
    // Every node served at least its health probe + session traffic:
    // the summed served counter must exceed what any single node could
    // have seen (each session is its own connection).
    match get("service.connections.served") {
        rijndael_cluster::stats::Scraped::Counter(served) => {
            assert!(served >= 12, "summed served counter too low: {served}")
        }
        other => panic!("served should be a counter, got {other:?}"),
    }
    match get("service.op.ping.requests") {
        rijndael_cluster::stats::Scraped::Counter(pings) => {
            assert!(pings >= 12, "summed ping counter too low: {pings}")
        }
        other => panic!("ping counter wrong shape: {other:?}"),
    }

    // The health supervisor sees the same picture: every node answers,
    // stays Up, and reports a live-connection gauge (each open session
    // holds a connection).
    let health = fleet.poll_health();
    assert_eq!(health.len(), 3);
    for sample in &health {
        assert!(sample.reachable, "node {} did not answer", sample.node);
        assert_eq!(sample.state, NodeState::Up);
        assert!(
            sample.active_connections.unwrap_or(0) >= 1,
            "node {} reports no active connections with sessions open",
            sample.node
        );
    }

    drop(fleet);
    for handle in handles {
        handle.shutdown();
    }
}

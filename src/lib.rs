//! Umbrella crate for the reproduction of *A Low Device Occupation IP to
//! Implement Rijndael Algorithm* (Panato, Barcelos, Reis — DATE 2003).
//!
//! This crate re-exports the workspace members so downstream users (and the
//! workspace-level integration tests and examples) can reach the whole
//! system through a single dependency:
//!
//! * [`gf256`] — GF(2^8) arithmetic and the S-box derivation;
//! * [`rijndael`] — the golden software reference cipher (all Rijndael
//!   block/key sizes, the AES subset, block modes, T-tables);
//! * [`rtl`] — the event-driven digital-logic simulator substrate;
//! * [`netlist`] — gate-level netlists, K-LUT technology mapping, packing
//!   and static timing analysis;
//! * [`fpga`] — Altera device models, the fitter and timing estimation;
//! * [`aes_ip`] — the paper's contribution: the low-area AES-128 soft IP
//!   (cycle-accurate cores, bus interface, netlist generators and the
//!   alternative architectures used for comparison);
//! * [`engine`] — the multi-core throughput engine scheduling batched
//!   block jobs across farms of IP cores and software backends;
//! * [`service`] — the framed TCP crypto service in front of the engine
//!   (length-prefixed wire protocol, sessions, threaded server, client);
//! * [`cluster`] — the client-side cluster router: N service nodes behind
//!   one consistent-hashed [`service::Transport`] with wrapped-key session
//!   distribution, draining and health supervision;
//! * [`telemetry`] — the std-only metrics spine (counters, gauges,
//!   histograms behind a registry with snapshot/delta/JSON rendering)
//!   every layer above publishes into.
//!
//! # Examples
//!
//! ```
//! use rijndael_ip::rijndael::Aes128;
//!
//! let key = [0u8; 16];
//! let aes = Aes128::new(&key);
//! let ct = aes.encrypt_block(&[0u8; 16]);
//! assert_eq!(aes.decrypt_block(&ct), [0u8; 16]);
//! ```

#![forbid(unsafe_code)]

pub use aes_ip;
pub use cluster;
pub use engine;
pub use fpga;
pub use gf256;
pub use netlist;
pub use rijndael;
pub use rtl;
pub use service;
pub use telemetry;

//! System-level equivalence for the software AES backends: every
//! implementation the runtime dispatcher can pick (AES-NI where the CPU
//! has it, the three bitsliced lanes, the T-table cipher, the golden
//! reference) plus the cycle-accurate IP core must agree block-for-block
//! on the FIPS-197 vectors and on randomized inputs, ragged batch sizes
//! must survive the engine's batch submission path, and batched CTR must
//! wrap its counter exactly like the per-block path.
//!
//! `scripts/verify.sh` runs this file once per `RIJNDAEL_FORCE_BACKEND`
//! token: the sweep always covers every backend the CPU can run, and the
//! forced token additionally pins what `AutoCipher::new` (the production
//! entry point) resolves to.

use rijndael_ip::aes_ip::core::Direction;
use rijndael_ip::engine::BackendSpec;
use rijndael_ip::rijndael::dispatch::{AutoCipher, Kind};
use rijndael_ip::rijndael::modes::Ctr;
use rijndael_ip::rijndael::ttable::TtableAes;
use rijndael_ip::rijndael::{Aes128, BatchCipher, Bitsliced8, BlockCipher};
use testkit::forall;
use testkit::prop::{any, vec_of};

/// Every software dispatch kind buildable on this host.
fn software_kinds() -> Vec<Kind> {
    Kind::ALL
        .into_iter()
        .filter(|k| *k != Kind::IpCore && k.available())
        .collect()
}

forall!(cases = 32, fn three_software_backends_agree(
    key in any::<[u8; 16]>(),
    data in vec_of(any::<[u8; 16]>(), 0..40),
) {
    let spec = Aes128::new(&key);
    let ttable = TtableAes::new(&key).expect("valid key");
    let sliced = Bitsliced8::new(&key);

    // Batched encrypt through the bitsliced path vs per-block references.
    let mut batch = data.clone();
    sliced.encrypt_blocks(&mut batch);
    for (pt, ct) in data.iter().zip(&batch) {
        assert_eq!(*ct, spec.encrypt_block(pt), "spec disagrees");
        let mut t = *pt;
        ttable.encrypt_block(&mut t);
        assert_eq!(*ct, t, "t-table disagrees");
    }

    // And back: batched decrypt restores the plaintext.
    sliced.decrypt_blocks(&mut batch);
    assert_eq!(batch, data);
});

/// The acceptance sweep: 10 000 randomized blocks, one key, every
/// software backend the runtime dispatcher can build on this host
/// byte-identical with the golden reference, in both directions.
#[test]
fn backends_agree_on_ten_thousand_randomized_blocks() {
    let key: [u8; 16] = core::array::from_fn(|i| (i as u8).wrapping_mul(37).wrapping_add(11));
    let spec = Aes128::new(&key);

    let mut state = 0x9E37_79B9_7F4A_7C15u64;
    let mut blocks = vec![[0u8; 16]; 10_000];
    for block in &mut blocks {
        for half in block.chunks_exact_mut(8) {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            half.copy_from_slice(&state.to_le_bytes());
        }
    }
    let expected: Vec<[u8; 16]> = blocks.iter().map(|b| spec.encrypt_block(b)).collect();

    for kind in software_kinds() {
        let cipher = AutoCipher::for_kind(kind, &key).expect("software kinds build a cipher");
        let mut batch = blocks.clone();
        cipher.encrypt_blocks(&mut batch);
        assert_eq!(batch, expected, "{} encrypt", kind.token());
        cipher.decrypt_blocks(&mut batch);
        assert_eq!(batch, blocks, "{} decrypt", kind.token());
    }
}

/// Every detected backend — hardware AES included where the CPU has it —
/// reproduces the FIPS-197 C.1 vector through both the single-block
/// trait path and the batch path.
#[test]
fn every_detected_backend_passes_the_fips197_kat() {
    let key: [u8; 16] = core::array::from_fn(|i| i as u8);
    let pt: [u8; 16] = core::array::from_fn(|i| (i as u8) * 0x11);
    let ct = [
        0x69, 0xC4, 0xE0, 0xD8, 0x6A, 0x7B, 0x04, 0x30, 0xD8, 0xCD, 0xB7, 0x80, 0x70, 0xB4, 0xC5,
        0x5A,
    ];

    let mut covered = Vec::new();
    for kind in software_kinds() {
        covered.push(kind.token());
        let cipher = AutoCipher::for_kind(kind, &key).expect("software kinds build a cipher");
        let mut one = pt;
        cipher.encrypt_in_place(&mut one);
        assert_eq!(one, ct, "{} single-block KAT", kind.token());
        cipher.decrypt_in_place(&mut one);
        assert_eq!(one, pt, "{} single-block inverse", kind.token());

        let mut batch = vec![pt; 19];
        cipher.encrypt_blocks(&mut batch);
        assert!(batch.iter().all(|b| *b == ct), "{} batch KAT", kind.token());
        cipher.decrypt_blocks(&mut batch);
        assert!(
            batch.iter().all(|b| *b == pt),
            "{} batch inverse",
            kind.token()
        );
    }
    // The IP core rides the engine backend path (it has no software
    // cipher object).
    let mut core = BackendSpec::EncDecCore.build(&key);
    let mut block = pt;
    core.process_block(&mut block, Direction::Encrypt).unwrap();
    assert_eq!(block, ct, "ip-core KAT");
    core.process_block(&mut block, Direction::Decrypt).unwrap();
    assert_eq!(block, pt, "ip-core inverse");
    covered.push(Kind::IpCore.token());

    // The sweep must genuinely cover every backend this host can run.
    for kind in Kind::detected() {
        assert!(
            covered.contains(&kind.token()),
            "{} not swept",
            kind.token()
        );
    }
    // And the portable constant-time fallback is always among them.
    assert!(covered.contains(&"bitsliced-portable"));
}

#[test]
fn fips197_c1_holds_through_the_bitsliced_core() {
    let key: [u8; 16] = core::array::from_fn(|i| i as u8);
    let sliced = Bitsliced8::new(&key);
    let pt: [u8; 16] = core::array::from_fn(|i| (i as u8) * 0x11);
    let want = [
        0x69, 0xC4, 0xE0, 0xD8, 0x6A, 0x7B, 0x04, 0x30, 0xD8, 0xCD, 0xB7, 0x80, 0x70, 0xB4, 0xC5,
        0x5A,
    ];
    // Every lane of a full granule carries the same vector.
    let mut batch = [pt; 8];
    sliced.encrypt_blocks(&mut batch);
    assert_eq!(batch, [want; 8]);
    sliced.decrypt_blocks(&mut batch);
    assert_eq!(batch, [pt; 8]);
    // The single-block trait path agrees.
    let mut one = pt;
    sliced.encrypt_in_place(&mut one);
    assert_eq!(one, want);
}

/// Every ragged batch size from one block up to past two granules must
/// come through the engine's `process_batch` submission path unchanged —
/// on every spec this host can build, hardware AES included.
#[test]
fn ragged_batches_survive_every_backend_process_batch() {
    let key = [0x3Cu8; 16];
    let spec = Aes128::new(&key);
    for n in 1..=23usize {
        let blocks: Vec<[u8; 16]> = (0..n)
            .map(|i| core::array::from_fn(|j| (i * 31 + j * 7) as u8))
            .collect();
        let expected: Vec<[u8; 16]> = blocks.iter().map(|b| spec.encrypt_block(b)).collect();
        for build in BackendSpec::detected() {
            let mut backend = build.build(&key);
            if !backend.supports(Direction::Encrypt) {
                continue;
            }
            let mut batch = blocks.clone();
            backend
                .process_batch(&mut batch, Direction::Encrypt)
                .expect("encrypt-capable backend");
            assert_eq!(batch, expected, "{build} disagrees at n={n}");
        }
        // The dispatched software kinds see the same ragged sizes
        // directly, off the engine path.
        for kind in software_kinds() {
            let cipher = AutoCipher::for_kind(kind, &key).expect("software kinds build a cipher");
            let mut batch = blocks.clone();
            cipher.encrypt_blocks(&mut batch);
            assert_eq!(batch, expected, "{} disagrees at n={n}", kind.token());
        }
    }
}

/// Batched CTR must wrap its 128-bit counter across a batch boundary
/// exactly like the per-block path: starting three blocks before the
/// wrap, block 3 is keyed by counter 0.
#[test]
fn batched_ctr_wraps_across_the_batch_boundary() {
    let key = [0x51u8; 16];
    let sliced = Bitsliced8::new(&key);
    let spec = Aes128::new(&key);
    let nonce = [0u8; 16];
    let first = u128::MAX - 2;

    let mut batched = vec![0u8; 20 * 16];
    Ctr::apply_batched(&sliced, &nonce, first, &mut batched);
    let mut per_block = vec![0u8; 20 * 16];
    Ctr::apply_at(&spec, &nonce, first, &mut per_block);
    assert_eq!(batched, per_block);

    // Block 3 sits exactly on the wrap: counter value 0.
    let zero_ks = spec.encrypt_block(&[0u8; 16]);
    assert_eq!(batched[3 * 16..4 * 16], zero_ks);
}

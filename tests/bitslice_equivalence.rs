//! System-level equivalence for the bitsliced AES backend: the three
//! software implementations (specification cipher, T-table cipher,
//! bitsliced cipher) must agree block-for-block on randomized inputs,
//! the FIPS-197 vectors must hold through the bitsliced core, ragged
//! batch sizes must survive the engine's batch submission path, and
//! batched CTR must wrap its counter exactly like the per-block path.

use rijndael_ip::aes_ip::core::Direction;
use rijndael_ip::engine::BackendSpec;
use rijndael_ip::rijndael::modes::Ctr;
use rijndael_ip::rijndael::ttable::TtableAes;
use rijndael_ip::rijndael::{Aes128, Bitsliced8, BlockCipher};
use testkit::forall;
use testkit::prop::{any, vec_of};

forall!(cases = 32, fn three_software_backends_agree(
    key in any::<[u8; 16]>(),
    data in vec_of(any::<[u8; 16]>(), 0..40),
) {
    let spec = Aes128::new(&key);
    let ttable = TtableAes::new(&key).expect("valid key");
    let sliced = Bitsliced8::new(&key);

    // Batched encrypt through the bitsliced path vs per-block references.
    let mut batch = data.clone();
    sliced.encrypt_blocks(&mut batch);
    for (pt, ct) in data.iter().zip(&batch) {
        assert_eq!(*ct, spec.encrypt_block(pt), "spec disagrees");
        let mut t = *pt;
        ttable.encrypt_block(&mut t);
        assert_eq!(*ct, t, "t-table disagrees");
    }

    // And back: batched decrypt restores the plaintext.
    sliced.decrypt_blocks(&mut batch);
    assert_eq!(batch, data);
});

/// The acceptance sweep: 10 000 randomized blocks, one key, all three
/// software implementations byte-identical.
#[test]
fn backends_agree_on_ten_thousand_randomized_blocks() {
    let key: [u8; 16] = core::array::from_fn(|i| (i as u8).wrapping_mul(37).wrapping_add(11));
    let spec = Aes128::new(&key);
    let ttable = TtableAes::new(&key).expect("valid key");
    let sliced = Bitsliced8::new(&key);

    let mut state = 0x9E37_79B9_7F4A_7C15u64;
    let mut blocks = vec![[0u8; 16]; 10_000];
    for block in &mut blocks {
        for half in block.chunks_exact_mut(8) {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            half.copy_from_slice(&state.to_le_bytes());
        }
    }

    let mut batch = blocks.clone();
    sliced.encrypt_blocks(&mut batch);
    for (pt, ct) in blocks.iter().zip(&batch) {
        assert_eq!(*ct, spec.encrypt_block(pt));
        let mut t = *pt;
        ttable.encrypt_block(&mut t);
        assert_eq!(*ct, t);
    }
    sliced.decrypt_blocks(&mut batch);
    assert_eq!(batch, blocks);
}

#[test]
fn fips197_c1_holds_through_the_bitsliced_core() {
    let key: [u8; 16] = core::array::from_fn(|i| i as u8);
    let sliced = Bitsliced8::new(&key);
    let pt: [u8; 16] = core::array::from_fn(|i| (i as u8) * 0x11);
    let want = [
        0x69, 0xC4, 0xE0, 0xD8, 0x6A, 0x7B, 0x04, 0x30, 0xD8, 0xCD, 0xB7, 0x80, 0x70, 0xB4, 0xC5,
        0x5A,
    ];
    // Every lane of a full granule carries the same vector.
    let mut batch = [pt; 8];
    sliced.encrypt_blocks(&mut batch);
    assert_eq!(batch, [want; 8]);
    sliced.decrypt_blocks(&mut batch);
    assert_eq!(batch, [pt; 8]);
    // The single-block trait path agrees.
    let mut one = pt;
    sliced.encrypt_in_place(&mut one);
    assert_eq!(one, want);
}

/// Every ragged batch size from one block up to past two granules must
/// come through the engine's `process_batch` submission path unchanged.
#[test]
fn ragged_batches_survive_every_backend_process_batch() {
    let key = [0x3Cu8; 16];
    let spec = Aes128::new(&key);
    for n in 1..=23usize {
        let blocks: Vec<[u8; 16]> = (0..n)
            .map(|i| core::array::from_fn(|j| (i * 31 + j * 7) as u8))
            .collect();
        let expected: Vec<[u8; 16]> = blocks.iter().map(|b| spec.encrypt_block(b)).collect();
        for build in BackendSpec::ALL {
            let mut backend = build.build(&key);
            if !backend.supports(Direction::Encrypt) {
                continue;
            }
            let mut batch = blocks.clone();
            backend
                .process_batch(&mut batch, Direction::Encrypt)
                .expect("encrypt-capable backend");
            assert_eq!(batch, expected, "{build} disagrees at n={n}");
        }
    }
}

/// Batched CTR must wrap its 128-bit counter across a batch boundary
/// exactly like the per-block path: starting three blocks before the
/// wrap, block 3 is keyed by counter 0.
#[test]
fn batched_ctr_wraps_across_the_batch_boundary() {
    let key = [0x51u8; 16];
    let sliced = Bitsliced8::new(&key);
    let spec = Aes128::new(&key);
    let nonce = [0u8; 16];
    let first = u128::MAX - 2;

    let mut batched = vec![0u8; 20 * 16];
    Ctr::apply_batched(&sliced, &nonce, first, &mut batched);
    let mut per_block = vec![0u8; 20 * 16];
    Ctr::apply_at(&spec, &nonce, first, &mut per_block);
    assert_eq!(batched, per_block);

    // Block 3 sits exactly on the wrap: counter value 0.
    let zero_ks = spec.encrypt_block(&[0u8; 16]);
    assert_eq!(batched[3 * 16..4 * 16], zero_ks);
}

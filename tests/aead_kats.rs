//! Authenticated-encryption known-answer tests: NIST GCM vectors
//! (McGrew–Viega test cases, including the empty-plaintext and AAD-only
//! shapes), RFC 3394 key-wrap vectors for all three KEK sizes, IEEE
//! 1619 XTS vectors including ciphertext stealing, and property-based
//! round-trip/tamper laws swept across every detected backend and all
//! three AES key sizes — plus the end-to-end service acceptance flow
//! (SET_KEY 32 bytes → SEAL → OPEN → TagMismatch → WRAP/UNWRAP).

use rijndael_ip::rijndael::aead::{self, Xts};
use rijndael_ip::rijndael::dispatch::Kind;
use rijndael_ip::rijndael::ttable::TtableAes;
use rijndael_ip::rijndael::{Aead, AutoCipher, Gcm};
use rijndael_ip::service::client::Client;
use rijndael_ip::service::server::{Server, ServiceConfig};
use testkit::forall;
use testkit::prop::{any, vec_of};

fn hex(s: &str) -> Vec<u8> {
    let s: String = s.chars().filter(|c| !c.is_whitespace()).collect();
    (0..s.len())
        .step_by(2)
        .map(|i| u8::from_str_radix(&s[i..i + 2], 16).expect("hex"))
        .collect()
}

fn nonce12(s: &str) -> [u8; 12] {
    hex(s).try_into().expect("12 bytes")
}

/// A GCM cipher over the T-table core for any AES key size.
fn gcm(key: &str) -> Gcm<TtableAes> {
    Gcm::new(TtableAes::new(&hex(key)).expect("valid key length"))
}

/// One McGrew–Viega GCM check: seal must produce `ct ‖ tag`, and open
/// must invert it.
fn gcm_case(key: &str, iv: &str, aad: &str, pt: &str, ct: &str, tag: &str) {
    let cipher = gcm(key);
    let nonce = nonce12(iv);
    let (aad, pt) = (hex(aad), hex(pt));
    let mut expect = hex(ct);
    expect.extend_from_slice(&hex(tag));
    let sealed = cipher.seal(&nonce, &aad, &pt);
    assert_eq!(sealed, expect, "seal mismatch for key {key}");
    assert_eq!(cipher.open(&nonce, &aad, &sealed).unwrap(), pt);
}

#[test]
fn gcm_nist_test_case_1_empty_everything() {
    // AES-128, empty plaintext, empty AAD: the tag is E(J0) ⊕ GHASH of
    // the all-lengths-zero block.
    gcm_case(
        "00000000000000000000000000000000",
        "000000000000000000000000",
        "",
        "",
        "",
        "58e2fccefa7e3061367f1d57a4e7455a",
    );
}

#[test]
fn gcm_nist_test_case_2_single_zero_block() {
    gcm_case(
        "00000000000000000000000000000000",
        "000000000000000000000000",
        "",
        "00000000000000000000000000000000",
        "0388dace60b6a392f328c2b971b2fe78",
        "ab6e47d42cec13bdf53a67b21257bddf",
    );
}

#[test]
fn gcm_nist_test_case_3_four_blocks_no_aad() {
    gcm_case(
        "feffe9928665731c6d6a8f9467308308",
        "cafebabefacedbaddecaf888",
        "",
        "d9313225f88406e5a55909c5aff5269a86a7a9531534f7da2e4c303d8a318a72\
         1c3c0c95956809532fcf0e2449a6b525b16aedf5aa0de657ba637b391aafd255",
        "42831ec2217774244b7221b784d0d49ce3aa212f2c02a4e035c17e2329aca12e\
         21d514b25466931c7d8f6a5aac84aa051ba30b396a0aac973d58e091473f5985",
        "4d5c2af327cd64a62cf35abd2ba6fab4",
    );
}

#[test]
fn gcm_nist_test_case_4_ragged_tail_with_aad() {
    gcm_case(
        "feffe9928665731c6d6a8f9467308308",
        "cafebabefacedbaddecaf888",
        "feedfacedeadbeeffeedfacedeadbeefabaddad2",
        "d9313225f88406e5a55909c5aff5269a86a7a9531534f7da2e4c303d8a318a72\
         1c3c0c95956809532fcf0e2449a6b525b16aedf5aa0de657ba637b39",
        "42831ec2217774244b7221b784d0d49ce3aa212f2c02a4e035c17e2329aca12e\
         21d514b25466931c7d8f6a5aac84aa051ba30b396a0aac973d58e091",
        "5bc94fbc3221a5db94fae95ae7121a47",
    );
}

#[test]
fn gcm_nist_aes192_test_case_10() {
    gcm_case(
        "feffe9928665731c6d6a8f9467308308feffe9928665731c",
        "cafebabefacedbaddecaf888",
        "feedfacedeadbeeffeedfacedeadbeefabaddad2",
        "d9313225f88406e5a55909c5aff5269a86a7a9531534f7da2e4c303d8a318a72\
         1c3c0c95956809532fcf0e2449a6b525b16aedf5aa0de657ba637b39",
        "3980ca0b3c00e841eb06fac4872a2757859e1ceaa6efd984628593b40ca1e19c\
         7d773d00c144c525ac619d18c84a3f4718e2448b2fe324d9ccda2710",
        "2519498e80f1478f37ba55bd6d27618c",
    );
}

#[test]
fn gcm_nist_aes256_test_case_16() {
    gcm_case(
        "feffe9928665731c6d6a8f9467308308feffe9928665731c6d6a8f9467308308",
        "cafebabefacedbaddecaf888",
        "feedfacedeadbeeffeedfacedeadbeefabaddad2",
        "d9313225f88406e5a55909c5aff5269a86a7a9531534f7da2e4c303d8a318a72\
         1c3c0c95956809532fcf0e2449a6b525b16aedf5aa0de657ba637b39",
        "522dc1f099567d07f47f37a32a84427d643a8cdcbfe5c0c97598a2bd2555d1aa\
         8cb08e48590dbb3da7b08b1056828838c5f61e6393ba7a0abcc9f662",
        "76fc6ece0f4e1768cddf8853bb2d551b",
    );
}

#[test]
fn gcm_aad_only_message_authenticates() {
    // No plaintext at all: GCM degenerates to a MAC over the AAD, and a
    // flipped AAD bit must still be caught.
    let cipher = gcm("feffe9928665731c6d6a8f9467308308");
    let nonce = [0x5A; 12];
    let sealed = cipher.seal(&nonce, b"associated data only", b"");
    assert_eq!(sealed.len(), 16, "tag only");
    assert_eq!(
        cipher
            .open(&nonce, b"associated data only", &sealed)
            .unwrap(),
        Vec::<u8>::new()
    );
    assert_eq!(
        cipher.open(&nonce, b"associated data onlY", &sealed),
        Err(aead::Error::TagMismatch)
    );
}

// ---------------------------------------------------------------------
// RFC 3394 key wrap
// ---------------------------------------------------------------------

fn wrap_case(kek: &str, key_data: &str, wrapped: &str) {
    let cipher = TtableAes::new(&hex(kek)).expect("valid KEK length");
    let got = aead::wrap(&cipher, &hex(key_data)).unwrap();
    assert_eq!(got, hex(wrapped), "wrap mismatch for KEK {kek}");
    assert_eq!(aead::unwrap(&cipher, &got).unwrap(), hex(key_data));
}

#[test]
fn key_wrap_rfc3394_section_4_vectors() {
    // §4.1: 128-bit key data under a 128-bit KEK.
    wrap_case(
        "000102030405060708090a0b0c0d0e0f",
        "00112233445566778899aabbccddeeff",
        "1fa68b0a8112b447aef34bd8fb5a7b829d3e862371d2cfe5",
    );
    // §4.2: 128-bit key data under a 192-bit KEK.
    wrap_case(
        "000102030405060708090a0b0c0d0e0f1011121314151617",
        "00112233445566778899aabbccddeeff",
        "96778b25ae6ca435f92b5b97c050aed2468ab8a17ad84e5d",
    );
    // §4.3: 128-bit key data under a 256-bit KEK.
    wrap_case(
        "000102030405060708090a0b0c0d0e0f101112131415161718191a1b1c1d1e1f",
        "00112233445566778899aabbccddeeff",
        "64e8c3f9ce0f5ba263e9777905818a2a93c8191e7d6e8ae7",
    );
    // §4.4: 192-bit key data under a 192-bit KEK.
    wrap_case(
        "000102030405060708090a0b0c0d0e0f1011121314151617",
        "00112233445566778899aabbccddeeff0001020304050607",
        "031d33264e15d33268f24ec260743edce1c6c7ddee725a936ba814915c6762d2",
    );
    // §4.6: 256-bit key data under a 256-bit KEK.
    wrap_case(
        "000102030405060708090a0b0c0d0e0f101112131415161718191a1b1c1d1e1f",
        "00112233445566778899aabbccddeeff000102030405060708090a0b0c0d0e0f",
        "28c9f404c4b810f4cbccb35cfb87f8263f5786e2d80ed326cbc7f0e71a99f43bfb988b9b7a02dd21",
    );
}

#[test]
fn key_unwrap_rejects_a_corrupt_integrity_value() {
    let cipher = TtableAes::new(&hex("000102030405060708090a0b0c0d0e0f")).unwrap();
    let mut wrapped = hex("1fa68b0a8112b447aef34bd8fb5a7b829d3e862371d2cfe5");
    wrapped[0] ^= 1;
    assert_eq!(
        aead::unwrap(&cipher, &wrapped),
        Err(aead::Error::TagMismatch)
    );
}

// ---------------------------------------------------------------------
// IEEE 1619 XTS
// ---------------------------------------------------------------------

fn xts_case(key1: &str, key2: &str, sector: u64, pt: &str, ct: &str) {
    let xts = Xts::new(
        TtableAes::new(&hex(key1)).expect("data key"),
        TtableAes::new(&hex(key2)).expect("tweak key"),
    );
    let mut buf = hex(pt);
    xts.encrypt_sector(sector, &mut buf).unwrap();
    assert_eq!(buf, hex(ct), "encrypt mismatch for sector {sector}");
    xts.decrypt_sector(sector, &mut buf).unwrap();
    assert_eq!(buf, hex(pt), "decrypt mismatch for sector {sector}");
}

#[test]
fn xts_ieee1619_vector_1_all_zero() {
    xts_case(
        "00000000000000000000000000000000",
        "00000000000000000000000000000000",
        0,
        "0000000000000000000000000000000000000000000000000000000000000000",
        "917cf69ebd68b2ec9b9fe9a3eadda692cd43d2f59598ed858c02c2652fbf922e",
    );
}

#[test]
fn xts_ieee1619_vector_2_nonzero_sector() {
    xts_case(
        "11111111111111111111111111111111",
        "22222222222222222222222222222222",
        0x3333333333,
        "4444444444444444444444444444444444444444444444444444444444444444",
        "c454185e6a16936e39334038acef838bfb186fff7480adc4289382ecd6d394f0",
    );
}

#[test]
fn xts_ieee1619_vector_15_ciphertext_stealing() {
    // 17-byte sector: one full block plus one stolen byte.
    xts_case(
        "fffefdfcfbfaf9f8f7f6f5f4f3f2f1f0",
        "bfbebdbcbbbab9b8b7b6b5b4b3b2b1b0",
        0x9a78563412,
        "000102030405060708090a0b0c0d0e0f10",
        "641610679dcbf92e505c41333fb06c2a95",
    );
}

// ---------------------------------------------------------------------
// Properties across backends and key sizes
// ---------------------------------------------------------------------

/// Every dispatchable backend that can build a cipher for `key`
/// (IP-core has no software cipher and is skipped by `for_kind`).
fn detected_ciphers(key: &[u8]) -> Vec<(Kind, AutoCipher)> {
    Kind::detected()
        .into_iter()
        .filter_map(|kind| AutoCipher::for_kind(kind, key).map(|c| (kind, c)))
        .collect()
}

forall!(cases = 24, fn gcm_roundtrips_on_every_backend_and_key_size(
    key in any::<[u8; 32]>(),
    nonce in any::<[u8; 12]>(),
    aad in vec_of(any::<u8>(), 0..24),
    pt in vec_of(any::<u8>(), 0..200),
) {
    for key_len in [16usize, 24, 32] {
        for (kind, cipher) in detected_ciphers(&key[..key_len]) {
            let gcm = Gcm::new(cipher);
            let sealed = gcm.seal(&nonce, &aad, &pt);
            assert_eq!(sealed.len(), pt.len() + 16);
            assert_eq!(
                gcm.open(&nonce, &aad, &sealed).unwrap(), pt,
                "roundtrip failed on {kind:?} with a {key_len}-byte key"
            );
        }
    }
});

forall!(cases = 24, fn gcm_backends_agree_with_the_ttable_reference(
    key in any::<[u8; 32]>(),
    nonce in any::<[u8; 12]>(),
    pt in vec_of(any::<u8>(), 0..200),
) {
    for key_len in [16usize, 24, 32] {
        let reference = Gcm::new(TtableAes::new(&key[..key_len]).unwrap())
            .seal(&nonce, b"aad", &pt);
        for (kind, cipher) in detected_ciphers(&key[..key_len]) {
            assert_eq!(
                Gcm::new(cipher).seal(&nonce, b"aad", &pt), reference,
                "{kind:?} disagrees with the T-table reference ({key_len}-byte key)"
            );
        }
    }
});

forall!(cases = 24, fn gcm_detects_any_single_corruption(
    key in any::<[u8; 16]>(),
    pt in vec_of(any::<u8>(), 1..64),
    flip in any::<(usize, u8)>(),
) {
    let gcm = Gcm::new(TtableAes::new(&key).unwrap());
    let nonce = [9u8; 12];
    let mut sealed = gcm.seal(&nonce, b"", &pt);
    let bit = 1u8 << (flip.1 % 8);
    let pos = flip.0 % sealed.len();
    sealed[pos] ^= bit;
    assert_eq!(gcm.open(&nonce, b"", &sealed), Err(aead::Error::TagMismatch));
});

forall!(cases = 24, fn xts_roundtrips_ragged_sectors_on_every_key_size(
    key in any::<[u8; 32]>(),
    tweak_key in any::<[u8; 32]>(),
    sector in any::<u64>(),
    pt in vec_of(any::<u8>(), 16..96),
) {
    for key_len in [16usize, 24, 32] {
        let xts = Xts::new(
            TtableAes::new(&key[..key_len]).unwrap(),
            TtableAes::new(&tweak_key[..key_len]).unwrap(),
        );
        let mut buf = pt.clone();
        xts.encrypt_sector(sector, &mut buf).unwrap();
        assert_ne!(buf, pt, "XTS must change the sector");
        xts.decrypt_sector(sector, &mut buf).unwrap();
        assert_eq!(buf, pt, "XTS roundtrip failed ({key_len}-byte keys)");
    }
});

forall!(cases = 24, fn key_wrap_roundtrips_arbitrary_key_data(
    kek in any::<[u8; 32]>(),
    data in vec_of(any::<u8>(), 16..64),
) {
    // Trim to a legal semiblock multiple (≥ 2 semiblocks).
    let len = (data.len() / 8) * 8;
    for key_len in [16usize, 24, 32] {
        let cipher = TtableAes::new(&kek[..key_len]).unwrap();
        let wrapped = aead::wrap(&cipher, &data[..len]).unwrap();
        assert_eq!(wrapped.len(), len + 8);
        assert_eq!(aead::unwrap(&cipher, &wrapped).unwrap(), &data[..len]);
    }
});

// ---------------------------------------------------------------------
// Service acceptance flow
// ---------------------------------------------------------------------

#[test]
fn service_acceptance_seal_open_wrap_with_an_aes256_session() {
    let server = Server::new(ServiceConfig::default())
        .spawn("127.0.0.1:0")
        .expect("bind ephemeral port");
    let mut client = Client::connect(server.local_addr()).unwrap();

    // A v2 client can SET_KEY a 32-byte key...
    let key: Vec<u8> = (0..32u8).map(|i| i.wrapping_mul(11) ^ 0x3C).collect();
    let sid = client.set_key(&key).unwrap();
    assert_ne!(sid, 0);

    // ...SEAL with AAD and OPEN it back...
    let nonce = [0xABu8; 12];
    let sealed = client
        .seal(&nonce, b"record header", b"the acceptance payload")
        .unwrap();
    // The wire result must equal the local construction under the same
    // key — the service adds nothing and removes nothing.
    let local = Gcm::new(TtableAes::new(&key).unwrap()).seal(
        &nonce,
        b"record header",
        b"the acceptance payload",
    );
    assert_eq!(sealed, local);
    assert_eq!(
        client
            .open(&nonce, b"record header", &sealed)
            .unwrap()
            .as_deref(),
        Some(b"the acceptance payload".as_slice())
    );

    // ...get TagMismatch on a flipped ciphertext bit...
    let mut tampered = sealed;
    tampered[4] ^= 0x10;
    assert_eq!(
        client.open(&nonce, b"record header", &tampered).unwrap(),
        None
    );

    // ...and WRAP/UNWRAP a session key.
    let session_key: Vec<u8> = (0..24u8).collect();
    let wrapped = client.wrap_key(&session_key).unwrap();
    assert_eq!(wrapped.len(), session_key.len() + 8);
    assert_eq!(
        client.unwrap_key(&wrapped).unwrap().as_deref(),
        Some(session_key.as_slice())
    );
    let mut bad = wrapped;
    bad[9] ^= 1;
    assert_eq!(client.unwrap_key(&bad).unwrap(), None);

    server.shutdown();
}

//! Zero-dependency FIPS-197 known-answer tests for the three hardware
//! core variants of the paper (encrypt-only, decrypt-only, combined
//! enc/dec), run through the bus driver against every published AES-128
//! vector the workspace carries (FIPS-197 Appendix B worked example /
//! Appendix C.1, AESAVS GFSbox, zero vector).
//!
//! These tests use no random stimulus and no test harness beyond
//! `#[test]`, so basic hardware correctness is established independently
//! of the property suite in `tests/properties.rs`.

use rijndael_ip::aes_ip::bus::IpDriver;
use rijndael_ip::aes_ip::core::{DecryptCore, Direction, EncDecCore, EncryptCore};
use rijndael_ip::rijndael::vectors::{KnownAnswer, AES128_VECTORS};

fn aes128_key(v: &KnownAnswer) -> [u8; 16] {
    v.key.try_into().expect("AES-128 vector key")
}

#[test]
fn encrypt_core_passes_fips197_vectors() {
    for v in AES128_VECTORS {
        let mut drv = IpDriver::new(EncryptCore::new());
        drv.write_key(&aes128_key(v));
        assert_eq!(
            drv.try_process_block(&v.plaintext, Direction::Encrypt)
                .unwrap(),
            v.ciphertext,
            "encrypt core disagrees with {}",
            v.source
        );
    }
}

#[test]
fn decrypt_core_passes_fips197_vectors() {
    for v in AES128_VECTORS {
        let mut drv = IpDriver::new(DecryptCore::new());
        drv.write_key(&aes128_key(v));
        assert_eq!(
            drv.try_process_block(&v.ciphertext, Direction::Decrypt)
                .unwrap(),
            v.plaintext,
            "decrypt core disagrees with {}",
            v.source
        );
    }
}

#[test]
fn encdec_core_passes_fips197_vectors_both_ways() {
    for v in AES128_VECTORS {
        let mut drv = IpDriver::new(EncDecCore::new());
        drv.write_key(&aes128_key(v));
        assert_eq!(
            drv.try_process_block(&v.plaintext, Direction::Encrypt)
                .unwrap(),
            v.ciphertext,
            "enc/dec core (encrypt) disagrees with {}",
            v.source
        );
        assert_eq!(
            drv.try_process_block(&v.ciphertext, Direction::Decrypt)
                .unwrap(),
            v.plaintext,
            "enc/dec core (decrypt) disagrees with {}",
            v.source
        );
    }
}

#[test]
fn vectors_survive_without_rekeying_between_blocks() {
    // All vectors under one key loaded once: the FIPS-197 C.1 key is
    // reused to check the schedule is not consumed by a block operation.
    let v = &AES128_VECTORS[0];
    let mut drv = IpDriver::new(EncDecCore::new());
    drv.write_key(&aes128_key(v));
    for _ in 0..3 {
        assert_eq!(
            drv.try_process_block(&v.plaintext, Direction::Encrypt)
                .unwrap(),
            v.ciphertext,
            "repeat encryption diverged for {}",
            v.source
        );
    }
}

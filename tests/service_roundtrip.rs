//! End-to-end exercise of the framed TCP service: concurrent clients
//! against published KATs, typed `Busy` backpressure, session
//! lifecycle, and graceful shutdown with the deferred queue drained.

use std::net::TcpStream;
use std::thread;
use std::time::Duration;

use rijndael_ip::engine::BackendSpec;
use rijndael_ip::service::client::{Client, ClientError, SubmitOutcome};
use rijndael_ip::service::protocol::{ErrorCode, Frame, Op, Status};
use rijndael_ip::service::server::{Server, ServiceConfig};
use rijndael_ip::service::Transport;

/// Pulls one counter's value out of a `telemetry/1` JSON document with
/// plain string surgery — the point is to audit the wire bytes without
/// trusting any of the service's own accessors.
fn json_counter(json: &str, name: &str) -> Option<u64> {
    let needle = format!("{{\"name\":\"{name}\",\"type\":\"counter\",\"value\":");
    let start = json.find(&needle)? + needle.len();
    let rest = &json[start..];
    rest[..rest.find('}')?].parse().ok()
}

fn hex(s: &str) -> Vec<u8> {
    let s: String = s.chars().filter(|c| !c.is_whitespace()).collect();
    (0..s.len())
        .step_by(2)
        .map(|i| u8::from_str_radix(&s[i..i + 2], 16).expect("hex"))
        .collect()
}

fn hex16(s: &str) -> [u8; 16] {
    hex(s).try_into().expect("16 bytes")
}

// SP 800-38A, AES-128 (Appendix F): one key, four-block test stream.
const SP800_KEY: &str = "2b7e151628aed2a6abf7158809cf4f3c";
const SP800_PT: &str = "6bc1bee22e409f96e93d7e117393172a\
                        ae2d8a571e03ac9c9eb76fac45af8e51\
                        30c81c46a35ce411e5fbc1191a0a52ef\
                        f69f2445df4f9b17ad2b417be66c3710";
const SP800_ECB_CT: &str = "3ad77bb40d7a3660a89ecaf32466ef97\
                            f5d3d58503b9699de785895a96fdbaaf\
                            43b1cd7f598ece23881b00e3ed030688\
                            7b0c785e27e8ad3f8223207104725dd4";
const SP800_CBC_IV: &str = "000102030405060708090a0b0c0d0e0f";
const SP800_CBC_CT: &str = "7649abac8119b246cee98e9b12e9197d\
                            5086cb9b507219ee95db113a917678b2\
                            73bed6b8e3c1743b7116e69e22229516\
                            3ff1caa1681fac09120eca307586e1a7";
const SP800_CTR_ICB: &str = "f0f1f2f3f4f5f6f7f8f9fafbfcfdfeff";
const SP800_CTR_CT: &str = "874d6191b620e3261bef6864990db6ce\
                            9806f66b7970fdff8617187bb9fffdff\
                            5ae4df3edbd5d35e5b4f09020db03eab\
                            1e031dda2fbe03d1792170a0f3009cee";
// RFC 4493 example 2 (same key, first SP 800-38A block).
const CMAC_TAG_1BLOCK: &str = "070a16b46b4d4144f79bdd9dd04a287c";

// FIPS-197 Appendix C.1.
const FIPS_KEY: &str = "000102030405060708090a0b0c0d0e0f";
const FIPS_PT: &str = "00112233445566778899aabbccddeeff";
const FIPS_CT: &str = "69c4e0d86a7b0430d8cdb78070b4c55a";

fn spawn_server(farm: Vec<BackendSpec>, queue: usize) -> rijndael_ip::service::ServiceHandle {
    Server::new(
        ServiceConfig::builder()
            .farm(&farm)
            .queue_capacity(queue)
            .max_connections(16)
            .idle_timeout(Duration::from_secs(10))
            .event_threads(2)
            .build()
            .expect("valid test config"),
    )
    .spawn("127.0.0.1:0")
    .expect("bind ephemeral port")
}

/// One client's full KAT conversation (SP 800-38A + RFC 4493), written
/// against the unified `Transport` surface so a cluster router can run
/// the identical script.
fn sp800_conversation(client: &mut dyn Transport) {
    let session = client.set_key(&hex16(SP800_KEY)).expect("SET_KEY");
    assert_ne!(session, 0);

    let pt = hex(SP800_PT);
    let ct = client.ecb_encrypt(&pt).expect("ECB encrypt");
    assert_eq!(ct, hex(SP800_ECB_CT), "SP 800-38A F.1.1");
    assert_eq!(client.ecb_decrypt(&ct).expect("ECB decrypt"), pt);

    let iv = hex16(SP800_CBC_IV);
    let ct = client.cbc_encrypt(&iv, &pt).expect("CBC encrypt");
    assert_eq!(ct, hex(SP800_CBC_CT), "SP 800-38A F.2.1");
    assert_eq!(client.cbc_decrypt(&iv, &ct).expect("CBC decrypt"), pt);

    let icb = hex16(SP800_CTR_ICB);
    let ct = client.ctr_apply(&icb, &pt).expect("CTR apply");
    assert_eq!(ct, hex(SP800_CTR_CT), "SP 800-38A F.5.1");
    assert_eq!(client.ctr_apply(&icb, &ct).expect("CTR re-apply"), pt);

    let tag = client.cmac_tag(&pt[..16]).expect("CMAC tag");
    assert_eq!(tag.to_vec(), hex(CMAC_TAG_1BLOCK), "RFC 4493 example 2");
    assert!(client.cmac_verify(&pt[..16], &tag).expect("CMAC verify"));
    let mut bad = tag;
    bad[0] ^= 1;
    assert!(!client.cmac_verify(&pt[..16], &bad).expect("CMAC verify"));
}

#[test]
fn four_concurrent_clients_roundtrip_published_kats() {
    // A deliberately heterogeneous farm: every session shards its jobs
    // over cycle-accurate hardware models and both software paths.
    let server = spawn_server(
        vec![
            BackendSpec::EncDecCore,
            BackendSpec::Software,
            BackendSpec::Ttable,
            BackendSpec::EncDecCore,
        ],
        8,
    );
    let addr = server.local_addr();

    let mut clients = Vec::new();
    for i in 0..4 {
        clients.push(thread::spawn(move || {
            let mut client = Client::connect(addr).expect("connect");
            if i == 0 {
                // One client runs the FIPS-197 vector instead, proving
                // sessions are keyed independently.
                client.set_key(&hex16(FIPS_KEY)).expect("SET_KEY");
                let ct = client.ecb_encrypt(&hex(FIPS_PT)).expect("encrypt");
                assert_eq!(ct, hex(FIPS_CT), "FIPS-197 C.1");
                assert_eq!(client.ecb_decrypt(&ct).expect("decrypt"), hex(FIPS_PT));
            } else {
                sp800_conversation(&mut client);
            }
        }));
    }
    for c in clients {
        c.join().expect("client thread");
    }

    assert_eq!(server.connections_served(), 4);
    server.shutdown();
}

#[test]
fn busy_backpressure_surfaces_and_flush_recovers() {
    let server = spawn_server(vec![BackendSpec::Software], 2);
    let mut client = Client::connect(server.local_addr()).expect("connect");
    client.set_key(&hex16(SP800_KEY)).expect("SET_KEY");

    let pt = hex(SP800_PT);
    let a = match client.try_submit(Op::EcbEncrypt, None, &pt).unwrap() {
        SubmitOutcome::Accepted(seq) => seq,
        other => panic!("first submission bounced: {other:?}"),
    };
    let icb = hex16(SP800_CTR_ICB);
    let b = match client.try_submit(Op::CtrApply, Some(&icb), &pt).unwrap() {
        SubmitOutcome::Accepted(seq) => seq,
        other => panic!("second submission bounced: {other:?}"),
    };

    // The queue (capacity 2) is full: the reply is a typed Busy carrying
    // the capacity, not a disconnect and not an unbounded queue.
    assert_eq!(
        client.try_submit(Op::EcbEncrypt, None, &pt).unwrap(),
        SubmitOutcome::Busy { capacity: 2 }
    );
    // And the connection is fully usable afterwards.
    assert_eq!(client.ping(b"still here").unwrap(), b"still here");

    let jobs = client.flush().expect("flush");
    assert_eq!(jobs.len(), 2);
    assert_eq!(jobs[0].seq, a);
    assert_eq!(jobs[0].result.as_ref().unwrap(), &hex(SP800_ECB_CT));
    assert_eq!(jobs[1].seq, b);
    assert_eq!(jobs[1].result.as_ref().unwrap(), &hex(SP800_CTR_CT));

    // The drain freed the queue: the bounced job now goes through.
    assert!(matches!(
        client.try_submit(Op::EcbEncrypt, None, &pt).unwrap(),
        SubmitOutcome::Accepted(_)
    ));
    let jobs = client.flush().expect("flush");
    assert_eq!(jobs.len(), 1);
    server.shutdown();
}

#[test]
fn get_stats_matches_an_independently_computed_tally() {
    let server = spawn_server(vec![BackendSpec::Software; 2], 8);
    let mut client = Client::connect(server.local_addr()).expect("connect");

    // Generate a workload whose books we keep by hand.
    client.set_key(&hex16(SP800_KEY)).expect("SET_KEY");
    let pt = hex(SP800_PT); // four blocks: small enough to ride the engine
    let mut blocks = 0u64;
    for _ in 0..5 {
        client.ecb_encrypt(&pt).expect("encrypt");
        blocks += (pt.len() / 16) as u64;
    }
    for _ in 0..3 {
        client.ping(b"x").expect("ping");
    }
    assert!(matches!(
        client.ecb_encrypt(&pt[..15]),
        Err(ClientError::Service {
            code: ErrorCode::RaggedLength,
            detail: 15
        })
    ));

    let json = client.stats().expect("GET_STATS");

    // Per-opcode counts match the tally (the ragged attempt still counts
    // as an ecb_encrypt request, and lands in the error tallies too).
    assert_eq!(json_counter(&json, "service.op.set_key.requests"), Some(1));
    assert_eq!(
        json_counter(&json, "service.op.ecb_encrypt.requests"),
        Some(6)
    );
    assert_eq!(json_counter(&json, "service.op.ping.requests"), Some(3));
    assert_eq!(json_counter(&json, "service.error.ragged_length"), Some(1));

    // Engine counters: both cores are software models (one block per
    // cycle, no key-setup cycles), so the blocks they report must sum to
    // the tally and every core's datapath occupancy is exactly 100%.
    let mut total = 0u64;
    for i in 0..2 {
        let prefix = format!("engine.core.{i}.soft-ref");
        let b = json_counter(&json, &format!("{prefix}.blocks")).expect("blocks counter");
        let cycles = json_counter(&json, &format!("{prefix}.cycles")).expect("cycles counter");
        let setup = json_counter(&json, &format!("{prefix}.setup_cycles")).expect("setup counter");
        let busy = json_counter(&json, &format!("{prefix}.busy_cycles")).expect("busy counter");
        assert_eq!(setup, 0, "software backends pay no setup cycles");
        assert_eq!(busy, cycles, "software cores stay 100% occupied");
        assert_eq!(cycles, b, "software cores run one block per cycle");
        total += b;
    }
    assert_eq!(total, blocks, "engine books must match the client's");

    // The wire document and the in-process registry agree entry for
    // entry — there is exactly one counter path.
    let snap = server.registry().snapshot();
    assert_eq!(snap.counter("service.op.ecb_encrypt.requests"), Some(6));
    assert_eq!(
        json_counter(&json, "service.connections.served"),
        snap.counter("service.connections.served")
    );

    // GET_STATS with a payload is malformed — and survivable.
    client
        .send_raw(&Frame::request(Op::GetStats, 0, 777, 0, vec![1, 2]))
        .unwrap();
    let reply = client.recv_raw().unwrap();
    assert_eq!(reply.error_body(), Some((ErrorCode::Malformed, 2)));
    assert_eq!(client.ping(b"alive").unwrap(), b"alive");

    server.shutdown();
}

#[test]
fn stale_sessions_are_rejected_after_rekey() {
    let server = spawn_server(vec![BackendSpec::Software], 4);
    let mut client = Client::connect(server.local_addr()).expect("connect");
    let first = client.set_key(&hex16(SP800_KEY)).expect("SET_KEY");
    let second = client.set_key(&hex16(FIPS_KEY)).expect("re-key");
    assert_ne!(first, second);

    // A pipelined request still naming the dead session gets the typed
    // StaleSession error with the live id as detail.
    client
        .send_raw(&Frame::request(Op::EcbEncrypt, 0, 99, first, vec![0; 16]))
        .unwrap();
    let reply = client.recv_raw().unwrap();
    assert_eq!(reply.error_body(), Some((ErrorCode::StaleSession, second)));

    // The live session answers with the new key.
    let ct = client.ecb_encrypt(&hex(FIPS_PT)).expect("encrypt");
    assert_eq!(ct, hex(FIPS_CT));
    server.shutdown();
}

#[test]
fn graceful_shutdown_drains_deferred_jobs_and_says_goodbye() {
    let server = spawn_server(vec![BackendSpec::Software], 4);
    let addr = server.local_addr();
    let mut client = Client::connect(addr).expect("connect");
    client.set_key(&hex16(SP800_KEY)).expect("SET_KEY");

    let pt = hex(SP800_PT);
    let seq = match client.try_submit(Op::EcbEncrypt, None, &pt).unwrap() {
        SubmitOutcome::Accepted(seq) => seq,
        other => panic!("submission bounced: {other:?}"),
    };

    // Shutdown with the job still queued: the worker must flush it and
    // deliver its Data reply before the goodbye. shutdown() returning
    // proves every server thread joined — no leaks, no panics.
    server.shutdown();

    let data = client.recv_raw().expect("drained job reply");
    assert_eq!(data.status(), Some(Status::Data));
    assert_eq!(data.seq, seq);
    assert_eq!(data.payload, hex(SP800_ECB_CT));

    let goodbye = client.recv_raw().expect("goodbye frame");
    assert_eq!(goodbye.error_body(), Some((ErrorCode::ShuttingDown, 0)));

    // The listener is gone with the threads: new connections fail.
    assert!(TcpStream::connect(addr).is_err());
}

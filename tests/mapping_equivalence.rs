//! Formal-ish verification of the synthesis substrate on the real design:
//! the LUT-mapped network must compute exactly what the gate network
//! computes, for the actual AES-128 IP netlists, on random input/state
//! vectors.

use std::collections::HashMap;

use rijndael_ip::aes_ip::core::CoreVariant;
use rijndael_ip::aes_ip::netlist_gen::{build_core_netlist, RomStyle};
use rijndael_ip::netlist::ir::{CellKind, NetId};
use rijndael_ip::netlist::mapper::{evaluate_mapped, map, MapperConfig};
use rijndael_ip::netlist::opt::optimize;
use testkit::Rng;

fn check_mapping(variant: CoreVariant, style: RomStyle, patterns: u32) {
    let nl = build_core_netlist(variant, style);
    let (clean, report) = optimize(&nl);
    assert!(
        report.cells_after <= report.cells_before,
        "optimizer grew the netlist"
    );
    let mapped = map(&clean, &MapperConfig::default());

    let pis: Vec<NetId> = clean.inputs().iter().map(|p| p.net).collect();
    let dffs: Vec<NetId> = clean
        .cells()
        .iter()
        .enumerate()
        .filter(|(_, c)| matches!(c.kind, CellKind::Dff))
        .map(|(i, _)| NetId(i as u32))
        .collect();

    let mut rng = Rng::seed_from_u64(0xDA7E_2003);
    for pattern in 0..patterns {
        let iv: HashMap<NetId, bool> = pis.iter().map(|&n| (n, rng.gen_bool())).collect();
        let st: HashMap<NetId, bool> = dffs.iter().map(|&n| (n, rng.gen_bool())).collect();

        let gate_vals = clean.evaluate(&iv, &st);
        let mapped_vals = evaluate_mapped(&clean, &mapped, &iv, &st);

        for po in clean.outputs() {
            assert_eq!(
                gate_vals[po.net.idx()],
                mapped_vals[&po.net],
                "{variant}/{style:?}: output {} diverged on pattern {pattern}",
                po.name
            );
        }
        // Next-state functions must agree too (the registers are the
        // design's real outputs).
        for &q in &dffs {
            let d = clean.cell(q).inputs[0];
            assert_eq!(
                gate_vals[d.idx()],
                mapped_vals[&d],
                "{variant}/{style:?}: register input diverged on pattern {pattern}"
            );
        }
    }
}

#[test]
fn encrypt_netlist_mapping_is_equivalent() {
    check_mapping(CoreVariant::Encrypt, RomStyle::Macro, 12);
}

#[test]
fn decrypt_netlist_mapping_is_equivalent() {
    check_mapping(CoreVariant::Decrypt, RomStyle::Macro, 8);
}

#[test]
fn encdec_netlist_mapping_is_equivalent() {
    check_mapping(CoreVariant::EncDec, RomStyle::Macro, 6);
}

#[test]
fn lut_rom_netlist_mapping_is_equivalent() {
    // The Cyclone-style netlist: S-boxes as shared mux trees.
    check_mapping(CoreVariant::Encrypt, RomStyle::LogicCells, 4);
}

#[test]
fn public_verify_api_agrees() {
    // The same checks through the public `netlist::verify` API, plus
    // gate-vs-optimized equivalence on the real design.
    use rijndael_ip::netlist::verify::{check_mapping as vm, check_netlists};
    let nl = build_core_netlist(CoreVariant::Encrypt, RomStyle::Macro);
    let (clean, _) = optimize(&nl);
    assert_eq!(
        check_netlists(&nl, &clean, 8, 0xA5),
        None,
        "optimize changed behaviour"
    );
    let mapped = map(&clean, &MapperConfig::default());
    assert_eq!(
        vm(&clean, &mapped, 8, 0xA5),
        None,
        "mapping changed behaviour"
    );
}

//! Object-safe mode dispatch must be a pure repackaging: for every key,
//! IV and buffer, driving a mode through `&dyn rijndael::Mode` produces
//! byte-identical output to the inherent free functions, and the two
//! directions invert each other. Bad inputs come back as typed
//! `rijndael::Error` values instead of panics.

use rijndael_ip::rijndael::modes::{Cbc, Cfb, Ctr, Ecb, Iv, Mode, Ofb};
use rijndael_ip::rijndael::{Aes128, Error};
use testkit::forall;
use testkit::prop::{any, vec_of};

/// The five mode implementations as trait objects, with their free-fn
/// counterparts applied to a scratch buffer.
fn reference(mode: &dyn Mode, aes: &Aes128, iv: &[u8; 16], data: &mut [u8]) {
    match mode.name() {
        "ecb" => Ecb::encrypt(aes, data).unwrap(),
        "cbc" => Cbc::encrypt(aes, iv, data).unwrap(),
        "ctr" => Ctr::apply(aes, iv, data),
        "cfb" => Cfb::encrypt(aes, iv, data),
        "ofb" => Ofb::apply(aes, iv, data),
        other => panic!("unknown mode {other}"),
    }
}

forall!(cases = 32, fn trait_dispatch_matches_the_free_functions(
    key in any::<[u8; 16]>(),
    iv in any::<[u8; 16]>(),
    data in vec_of(any::<u8>(), 0..96),
) {
    let aes = Aes128::new(&key);
    let iv_obj = Iv::from(iv);
    let mut whole = data.clone();
    whole.truncate(data.len() / 16 * 16);

    let modes: [&dyn Mode; 5] = [&Ecb, &Cbc, &Ctr, &Cfb, &Ofb];
    for mode in modes {
        // Block modes get the truncated buffer; stream modes take any
        // length — exactly the contract requires_full_blocks() states.
        let input: &[u8] = if mode.requires_full_blocks() {
            &whole
        } else {
            &data
        };

        let mut via_trait = input.to_vec();
        mode.encrypt_in_place(&aes, &iv_obj, &mut via_trait)
            .unwrap_or_else(|e| panic!("{} encrypt failed: {e}", mode.name()));

        let mut via_free = input.to_vec();
        reference(mode, &aes, &iv, &mut via_free);
        assert_eq!(via_trait, via_free, "{} diverged from the free fn", mode.name());

        // And the trait's decrypt inverts its encrypt.
        mode.decrypt_in_place(&aes, &iv_obj, &mut via_trait)
            .unwrap_or_else(|e| panic!("{} decrypt failed: {e}", mode.name()));
        assert_eq!(via_trait, input, "{} round trip diverged", mode.name());
    }
});

#[test]
fn bad_inputs_come_back_as_typed_errors_not_panics() {
    let aes = Aes128::new(&[0u8; 16]);
    let good_iv = Iv::from([0u8; 16]);
    let short_iv = Iv::new(&[1u8; 5]);
    let mut ragged = vec![0u8; 17];

    for mode in [&Ecb as &dyn Mode, &Cbc] {
        assert!(mode.requires_full_blocks());
        assert_eq!(
            mode.encrypt_in_place(&aes, &good_iv, &mut ragged),
            Err(Error::RaggedLength { len: 17, block: 16 }),
            "{}",
            mode.name()
        );
    }
    // Modes that consume an IV reject a wrong-length one; ECB ignores it.
    for mode in [&Cbc as &dyn Mode, &Ctr, &Cfb, &Ofb] {
        let mut data = vec![0u8; 16];
        assert_eq!(
            mode.decrypt_in_place(&aes, &short_iv, &mut data),
            Err(Error::BadIv { len: 5, block: 16 }),
            "{}",
            mode.name()
        );
    }
    let mut data = vec![0u8; 16];
    assert!((&Ecb as &dyn Mode)
        .encrypt_in_place(&aes, &short_iv, &mut data)
        .is_ok());
}

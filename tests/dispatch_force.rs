//! End-to-end coverage of the `RIJNDAEL_FORCE_BACKEND` override: pinning
//! a backend must be honored by the dispatch layer, the engine's `Auto`
//! farm slots, the service session's bulk lane, and — visibly — by the
//! `GET_STATS` telemetry a client scrapes off the wire.
//!
//! The whole file is one test function because the override is read from
//! the environment exactly once per process (then cached); every
//! assertion after the `set_var` shares that single decision.
//! `scripts/verify.sh` complements this in-process pin by re-running the
//! equivalence sweep in a fresh process per backend token.

use std::time::Duration;

use rijndael_ip::engine::{BackendSpec, EngineBuilder, Mode};
use rijndael_ip::rijndael::dispatch::{self, AutoCipher, Kind};
use rijndael_ip::rijndael::{Aes128, BatchCipher};
use rijndael_ip::service::client::Client;
use rijndael_ip::service::server::{Server, ServiceConfig};

/// Pulls one counter's value out of a `telemetry/1` JSON document with
/// plain string surgery — auditing the wire bytes, not the accessors.
fn json_counter(json: &str, name: &str) -> Option<u64> {
    let needle = format!("{{\"name\":\"{name}\",\"type\":\"counter\",\"value\":");
    let start = json.find(&needle)? + needle.len();
    let rest = &json[start..];
    rest[..rest.find('}')?].parse().ok()
}

#[test]
fn forced_backend_pins_dispatch_and_shows_up_in_get_stats() {
    // The portable bitsliced plane is available on every host, so this
    // pin can never be skipped by hardware variance.
    std::env::set_var(dispatch::FORCE_ENV, "bitsliced-portable");

    // Layer 1: the dispatch decision itself.
    assert_eq!(dispatch::forced(), Some(Kind::BitslicedPortable));
    let sel = dispatch::selection();
    assert!(sel.forced);
    assert_eq!(sel.bulk, Kind::BitslicedPortable);
    assert_eq!(sel.block, Kind::BitslicedPortable);

    // Layer 2: the production cipher entry point resolves to the pin and
    // still computes AES.
    let key: [u8; 16] = core::array::from_fn(|i| i as u8);
    let cipher = AutoCipher::new(&key).expect("non-ip-core pins build a cipher");
    assert_eq!(cipher.kind(), Kind::BitslicedPortable);
    assert_eq!(cipher.backend_name(), "soft-bitsliced-portable");
    let reference = Aes128::new(&key);
    let mut blocks: Vec<[u8; 16]> = (0..19u8).map(|i| [i.wrapping_mul(13); 16]).collect();
    let expected: Vec<[u8; 16]> = blocks.iter().map(|b| reference.encrypt_block(b)).collect();
    cipher.encrypt_blocks(&mut blocks);
    assert_eq!(blocks, expected);

    // Layer 3: an Auto farm slot reports the resolved backend name and
    // publishes its counters under it.
    let reg = telemetry::Registry::new();
    let mut engine = EngineBuilder::new()
        .core(BackendSpec::Auto)
        .registry(reg.clone())
        .build(&key);
    engine
        .try_submit(Mode::EcbEncrypt, vec![0u8; 16 * 16])
        .unwrap();
    assert!(engine.run()[0].data.is_ok());
    assert_eq!(
        engine
            .snapshot()
            .counter("engine.core.0.soft-bitsliced-portable.blocks"),
        Some(16)
    );

    // Layer 4: the full service — the forced name is what GET_STATS
    // reports after bulk and small traffic.
    let server = Server::new(
        ServiceConfig::builder()
            .farm(&[BackendSpec::Auto; 2])
            .queue_capacity(8)
            .max_connections(4)
            .idle_timeout(Duration::from_secs(10))
            .event_threads(1)
            .build()
            .expect("valid test config"),
    )
    .spawn("127.0.0.1:0")
    .expect("bind ephemeral port");

    let mut client = Client::connect(server.local_addr()).expect("connect");
    client.set_key(&key).expect("SET_KEY");
    // Small payload: rides the engine farm (the Auto slots).
    let small = client.ecb_encrypt(&[0u8; 16]).expect("small ECB");
    assert_eq!(small, reference.encrypt_block(&[0u8; 16]));
    // Bulk payload: rides the session's dispatched bulk lane.
    let bulk_pt = vec![0u8; 64 * 16];
    let bulk_ct = client.ecb_encrypt(&bulk_pt).expect("bulk ECB");
    assert_eq!(&bulk_ct[..16], reference.encrypt_block(&[0u8; 16]));

    let stats = client.stats().expect("GET_STATS");
    assert_eq!(
        json_counter(&stats, "rijndael.dispatch.backend.bitsliced-portable"),
        Some(1),
        "dispatch decision missing from GET_STATS: {stats}"
    );
    assert!(
        stats.contains("engine.core.0.soft-bitsliced-portable."),
        "forced backend name missing from core telemetry: {stats}"
    );

    drop(client);
    server.shutdown();
}

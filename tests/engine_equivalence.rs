//! System-level checks of the multi-core throughput engine: every farm
//! shape must produce byte-identical output to the software reference
//! for every mode it can run, backpressure must hold at the submission
//! boundary, and adding cores must monotonically improve aggregate
//! cycles/block while keeping each core's bus saturated.

use rijndael_ip::engine::{BackendSpec, Engine, JobError, Mode, SubmitError};
use rijndael_ip::rijndael::modes::{Cbc, Ctr, Ecb};
use rijndael_ip::rijndael::Aes128;
use testkit::forall;
use testkit::prop::{any, vec_of};

/// The farm shapes the acceptance sweep covers: single combined core,
/// homogeneous multi-core farms of each hardware variant, each software
/// backend alone, and a heterogeneous mix.
const FARMS: &[&[BackendSpec]] = &[
    &[BackendSpec::EncDecCore],
    &[BackendSpec::EncryptCore; 3],
    &[BackendSpec::DecryptCore; 3],
    &[BackendSpec::EncDecCore; 4],
    &[BackendSpec::Software],
    &[BackendSpec::Ttable; 2],
    &[BackendSpec::Bitsliced; 2],
    &[
        BackendSpec::EncryptCore,
        BackendSpec::DecryptCore,
        BackendSpec::EncDecCore,
        BackendSpec::Software,
        BackendSpec::Ttable,
        BackendSpec::Bitsliced,
    ],
];

fn farm_supports(specs: &[BackendSpec], mode: Mode) -> bool {
    use rijndael_ip::aes_ip::core::Direction;
    specs.iter().any(|s| match mode.direction() {
        Direction::Encrypt => !matches!(s, BackendSpec::DecryptCore),
        Direction::Decrypt => !matches!(s, BackendSpec::EncryptCore),
    })
}

forall!(cases = 24, fn engine_matches_software_reference_on_every_farm(
    key in any::<[u8; 16]>(),
    iv in any::<[u8; 16]>(),
    data in vec_of(any::<u8>(), 0..96),
) {
    let reference = Aes128::new(&key);
    let mut whole_blocks = data.clone();
    whole_blocks.truncate(data.len() / 16 * 16);

    // (mode, input, expected) triples computed from the software reference.
    let mut cases: Vec<(Mode, Vec<u8>, Vec<u8>)> = Vec::new();
    let mut buf = whole_blocks.clone();
    Ecb::encrypt(&reference, &mut buf).unwrap();
    cases.push((Mode::EcbEncrypt, whole_blocks.clone(), buf.clone()));
    let mut dec = buf.clone();
    Ecb::decrypt(&reference, &mut dec).unwrap();
    cases.push((Mode::EcbDecrypt, buf, dec));
    let mut buf = whole_blocks.clone();
    Cbc::encrypt(&reference, &iv, &mut buf).unwrap();
    cases.push((Mode::CbcEncrypt(iv), whole_blocks.clone(), buf.clone()));
    let mut dec = buf.clone();
    Cbc::decrypt(&reference, &iv, &mut dec).unwrap();
    cases.push((Mode::CbcDecrypt(iv), buf, dec));
    let mut buf = data.clone();
    Ctr::apply(&reference, &iv, &mut buf);
    cases.push((Mode::Ctr(iv), data.clone(), buf.clone()));
    cases.push((Mode::Ctr(iv), buf, data.clone()));

    for specs in FARMS {
        let mut eng = Engine::with_farm(&key, specs, cases.len());
        let mut expected = Vec::new();
        for (mode, input, want) in &cases {
            if !farm_supports(specs, *mode) {
                continue;
            }
            eng.try_submit(*mode, input.clone()).unwrap();
            expected.push((*mode, want.clone()));
        }
        let outputs = eng.run();
        assert_eq!(outputs.len(), expected.len());
        for (out, (mode, want)) in outputs.iter().zip(&expected) {
            assert_eq!(
                out.data.as_ref().unwrap(),
                want,
                "{mode} diverged on farm {specs:?}"
            );
        }
    }
});

#[test]
fn farms_without_the_needed_datapath_report_per_job() {
    let key = [7u8; 16];
    let mut eng = Engine::with_farm(&key, &[BackendSpec::DecryptCore; 2], 4);
    eng.try_submit(Mode::EcbEncrypt, vec![0u8; 32]).unwrap();
    eng.try_submit(Mode::EcbDecrypt, vec![0u8; 32]).unwrap();
    let out = eng.run();
    assert!(matches!(out[0].data, Err(JobError::NoCapableCore { .. })));
    assert!(out[1].data.is_ok(), "decrypt farm still decrypts");
}

#[test]
fn backpressure_is_bounded_and_recoverable() {
    let key = [3u8; 16];
    let mut eng = Engine::with_farm(&key, &[BackendSpec::EncDecCore], 2);
    eng.try_submit(Mode::Ctr([0; 16]), vec![1; 16]).unwrap();
    eng.try_submit(Mode::Ctr([0; 16]), vec![2; 16]).unwrap();
    assert_eq!(
        eng.try_submit(Mode::Ctr([0; 16]), vec![3; 16]),
        Err(SubmitError::Busy { capacity: 2 }),
    );
    assert_eq!(eng.queued(), 2, "the rejected job held no slot");
    assert_eq!(eng.run().len(), 2);
    assert!(eng.try_submit(Mode::Ctr([0; 16]), vec![3; 16]).is_ok());
}

#[test]
fn ctr_scaling_improves_monotonically_with_saturated_cores() {
    // The tentpole acceptance check: aggregate cycles/block improves
    // monotonically from 1 to 4 cores on a CTR workload, with every
    // participating core's bus >= 90% occupied.
    let key = [0x2Bu8; 16];
    let payload = vec![0xC3u8; 256 * 16];
    let mut last = f64::INFINITY;
    for cores in 1..=4usize {
        let mut eng = Engine::with_farm(&key, &vec![BackendSpec::EncryptCore; cores], 2);
        eng.try_submit(Mode::Ctr([0x10; 16]), payload.clone())
            .unwrap();
        assert!(eng.run()[0].data.is_ok());
        let s = eng.stats();
        assert_eq!(s.total_blocks(), 256);
        assert!(
            s.cycles_per_block() < last,
            "{cores} cores: {:.2} cycles/block did not beat {last:.2}",
            s.cycles_per_block(),
        );
        assert!(
            s.min_occupancy_pct() >= 90.0,
            "{cores} cores: occupancy fell to {:.1}%",
            s.min_occupancy_pct(),
        );
        last = s.cycles_per_block();
    }
    // Four saturated cores approach 50/4 cycles per block.
    assert!(
        last < 13.0,
        "expected near 12.5 cycles/block, got {last:.2}"
    );
}

#[test]
fn software_and_hardware_farm_members_interleave_cleanly() {
    // A mixed farm shards one ECB job across hardware and software
    // members; the reassembled buffer must still match the reference.
    // 26 blocks = four 8-block granules less a ragged tail, so the
    // granule planner still hands every member a share (16/8/2).
    let key = [0x55u8; 16];
    let specs = [
        BackendSpec::EncryptCore,
        BackendSpec::Software,
        BackendSpec::Ttable,
    ];
    let data: Vec<u8> = (0..26 * 16).map(|i| (i * 13 + 1) as u8).collect();
    let mut eng = Engine::with_farm(&key, &specs, 1);
    eng.try_submit(Mode::EcbEncrypt, data.clone()).unwrap();
    let out = eng.run();

    let mut expected = data;
    Ecb::encrypt(&Aes128::new(&key), &mut expected).unwrap();
    assert_eq!(out[0].data.as_ref().unwrap(), &expected);

    let s = eng.stats();
    assert!(
        s.per_core.iter().all(|c| c.blocks > 0),
        "all members took a share: {s}"
    );
}

//! Cross-crate integration: every model of the cipher — specification,
//! T-tables, cycle-accurate IP, gate-level netlist — must agree on random
//! workloads, and the hardware models must compose with the software
//! block modes.

use rijndael_ip::aes_ip::bus::{HardwareAes, IpDriver};
use rijndael_ip::aes_ip::core::{CoreVariant, DecryptCore, Direction, EncDecCore, EncryptCore};
use rijndael_ip::aes_ip::gate_sim::GateLevelCore;
use rijndael_ip::aes_ip::netlist_gen::RomStyle;
use rijndael_ip::rijndael::modes::{Cbc, Ctr, Ecb, Ofb};
use rijndael_ip::rijndael::ttable::TtableAes;
use rijndael_ip::rijndael::Aes128;
use testkit::Rng;

#[test]
fn four_implementations_agree_on_random_blocks() {
    let mut rng = Rng::seed_from_u64(0xAE5_2003);
    for trial in 0..12 {
        let key: [u8; 16] = rng.gen_array();
        let pt: [u8; 16] = rng.gen_array();

        let spec = Aes128::new(&key).encrypt_block(&pt);

        let mut ttable_block = pt;
        TtableAes::new(&key)
            .expect("AES key")
            .encrypt_block(&mut ttable_block);
        assert_eq!(ttable_block, spec, "T-table diverged (trial {trial})");

        let mut cyc = IpDriver::new(EncryptCore::new());
        cyc.write_key(&key);
        assert_eq!(
            cyc.try_process_block(&pt, Direction::Encrypt).unwrap(),
            spec,
            "cycle-accurate IP diverged (trial {trial})"
        );

        let mut gate = IpDriver::new(GateLevelCore::new(CoreVariant::Encrypt, RomStyle::Macro));
        gate.write_key(&key);
        assert_eq!(
            gate.try_process_block(&pt, Direction::Encrypt).unwrap(),
            spec,
            "gate-level netlist diverged (trial {trial})"
        );
    }
}

#[test]
fn decrypt_cores_invert_encrypt_cores() {
    let mut rng = Rng::seed_from_u64(7);
    for _ in 0..6 {
        let key: [u8; 16] = rng.gen_array();
        let pt: [u8; 16] = rng.gen_array();

        let mut enc = IpDriver::new(EncryptCore::new());
        enc.write_key(&key);
        let ct = enc.try_process_block(&pt, Direction::Encrypt).unwrap();

        let mut dec = IpDriver::new(DecryptCore::new());
        dec.write_key(&key);
        assert_eq!(dec.try_process_block(&ct, Direction::Decrypt).unwrap(), pt);
    }
}

#[test]
fn lut_rom_gate_level_matches_eab_gate_level() {
    // The Cyclone-style netlist (S-boxes as logic) must behave exactly
    // like the EAB-style netlist.
    let key = [0x5Au8; 16];
    let pt = [0xC3u8; 16];
    let mut eab = IpDriver::new(GateLevelCore::new(CoreVariant::Encrypt, RomStyle::Macro));
    let mut lut = IpDriver::new(GateLevelCore::new(
        CoreVariant::Encrypt,
        RomStyle::LogicCells,
    ));
    eab.write_key(&key);
    lut.write_key(&key);
    assert_eq!(
        eab.try_process_block(&pt, Direction::Encrypt).unwrap(),
        lut.try_process_block(&pt, Direction::Encrypt).unwrap()
    );
}

#[test]
fn hardware_runs_every_mode_like_software() {
    let key = [9u8; 16];
    let iv = [3u8; 16];
    let hw = HardwareAes::new(EncDecCore::new(), &key);
    let sw = Aes128::new(&key);
    let mut rng = Rng::seed_from_u64(99);
    let msg: Vec<u8> = rng.gen_vec(96);

    let mut a = msg.clone();
    let mut b = msg.clone();
    Ecb::encrypt(&hw, &mut a).expect("aligned");
    Ecb::encrypt(&sw, &mut b).expect("aligned");
    assert_eq!(a, b, "ECB");

    let mut a = msg.clone();
    let mut b = msg.clone();
    Cbc::encrypt(&hw, &iv, &mut a).expect("aligned");
    Cbc::encrypt(&sw, &iv, &mut b).expect("aligned");
    assert_eq!(a, b, "CBC");
    Cbc::decrypt(&hw, &iv, &mut a).expect("aligned");
    assert_eq!(a, msg, "CBC roundtrip");

    let mut a = msg.clone();
    let mut b = msg.clone();
    Ctr::apply(&hw, &iv, &mut a);
    Ctr::apply(&sw, &iv, &mut b);
    assert_eq!(a, b, "CTR");

    let mut a = msg.clone();
    let mut b = msg;
    Ofb::apply(&hw, &iv, &mut a);
    Ofb::apply(&sw, &iv, &mut b);
    assert_eq!(a, b, "OFB");
}

#[test]
fn key_agility_reload_mid_stream() {
    // Rekeying mid-session must fully take effect (no stale schedule).
    let mut drv = IpDriver::new(EncDecCore::new());
    let k1 = [1u8; 16];
    let k2 = [2u8; 16];
    let pt = [0u8; 16];

    drv.write_key(&k1);
    let c1 = drv.try_process_block(&pt, Direction::Encrypt).unwrap();
    drv.write_key(&k2);
    let c2 = drv.try_process_block(&pt, Direction::Encrypt).unwrap();
    drv.write_key(&k1);
    let c1_again = drv.try_process_block(&pt, Direction::Encrypt).unwrap();

    assert_ne!(c1, c2);
    assert_eq!(c1, c1_again);
    assert_eq!(c1, Aes128::new(&k1).encrypt_block(&pt));
    assert_eq!(c2, Aes128::new(&k2).encrypt_block(&pt));

    // Decryption under the reloaded key still works.
    let back = drv
        .try_process_block(&c1_again, Direction::Decrypt)
        .unwrap();
    assert_eq!(back, pt);
}

#[test]
fn pipelined_stream_equals_blockwise_processing() {
    let key = [0x77u8; 16];
    let mut rng = Rng::seed_from_u64(1234);
    let blocks: Vec<[u8; 16]> = (0..10).map(|_| rng.gen_array()).collect();

    let mut streamed = IpDriver::new(EncryptCore::new());
    streamed.write_key(&key);
    let stream_out = streamed
        .try_process_stream(&blocks, Direction::Encrypt)
        .unwrap();

    let mut blockwise = IpDriver::new(EncryptCore::new());
    blockwise.write_key(&key);
    for (pt, expect) in blocks.iter().zip(&stream_out) {
        assert_eq!(
            blockwise.try_process_block(pt, Direction::Encrypt).unwrap(),
            *expect
        );
    }
}

#[test]
fn hardware_diffusion_matches_the_cipher() {
    // The avalanche criterion measured through the pins of the hardware
    // model — the same property the SEU analysis relies on.
    use rijndael_ip::rijndael::diffusion::plaintext_avalanche;
    let hw = HardwareAes::new(EncryptCore::new(), &[0x42u8; 16]);
    let stats = plaintext_avalanche(&hw, 48);
    assert!(
        stats.satisfies_sac(128, 6.0),
        "hardware avalanche out of range: {stats:?}"
    );
}

//! Property-based tests across the workspace: cipher roundtrips for
//! arbitrary keys and blocks at every Rijndael size, hardware/software
//! agreement under arbitrary inputs, bus-protocol robustness under
//! arbitrary handshake timing, and the algebra the datapath relies on.
//!
//! Runs on the hermetic `testkit` harness: 64 deterministic cases per
//! law (the same budget the old `ProptestConfig::with_cases(64)` used),
//! with seed reporting and bisection shrinking on failure.

use rijndael_ip::aes_ip::bus::IpDriver;
use rijndael_ip::aes_ip::core::{CoreInputs, CycleCore, Direction, EncDecCore, EncryptCore};
use rijndael_ip::aes_ip::datapath;
use rijndael_ip::gf256::{Gf256, GfPoly4};
use rijndael_ip::rijndael::{modes, Aes128, Rijndael};
use testkit::forall;
use testkit::prop::{any, vec_of};

forall!(cases = 64, fn aes128_roundtrip(key in any::<[u8; 16]>(), pt in any::<[u8; 16]>()) {
    let aes = Aes128::new(&key);
    assert_eq!(aes.decrypt_block(&aes.encrypt_block(&pt)), pt);
});

forall!(cases = 64, fn wide_rijndael_roundtrip(key in any::<[u8; 20]>(), pt in any::<[u8; 28]>()) {
    // 160-bit key, 224-bit block: deep inside the non-AES space.
    let cipher = Rijndael::<7>::new(&key).expect("valid size");
    let mut block = pt;
    cipher.encrypt(&mut block);
    cipher.decrypt(&mut block);
    assert_eq!(block, pt);
});

forall!(cases = 64, fn hardware_equals_software(key in any::<[u8; 16]>(), pt in any::<[u8; 16]>()) {
    let mut drv = IpDriver::new(EncryptCore::new());
    drv.write_key(&key);
    let hw = drv.try_process_block(&pt, Direction::Encrypt).unwrap();
    assert_eq!(hw, Aes128::new(&key).encrypt_block(&pt));
});

forall!(cases = 64, fn key_walk_matches_stored_schedule(key in any::<u128>(), n in 0usize..=10) {
    // The decrypt core's setup walk must reach the same round key the
    // stored schedule holds.
    let bytes = datapath::u128_to_block(key);
    let schedule = rijndael_ip::rijndael::KeySchedule::expand(&bytes, 4).expect("16 bytes");
    let expect = schedule.round_key(n).iter()
        .fold(0u128, |acc, &w| (acc << 32) | u128::from(w));
    assert_eq!(datapath::round_key_at(key, n), expect);
});

forall!(cases = 64, fn gf_distributivity(a in any::<u8>(), b in any::<u8>(), c in any::<u8>()) {
    let (a, b, c) = (Gf256::new(a), Gf256::new(b), Gf256::new(c));
    assert_eq!(a * (b + c), a * b + a * c);
});

forall!(cases = 64, fn mix_column_polynomial_roundtrip(col in any::<[u8; 4]>()) {
    let mixed = GfPoly4::MIX_COLUMN.apply_column(col);
    assert_eq!(GfPoly4::INV_MIX_COLUMN.apply_column(mixed), col);
});

forall!(cases = 64, fn shift_sub_commute(state in any::<u128>()) {
    // The decrypt datapath folds IShiftRow into the IByteSub cycle;
    // that is only legal because the two commute.
    let a = datapath::inv_shift_rows(sub_all(state));
    let b = sub_all(datapath::inv_shift_rows(state));
    assert_eq!(a, b);
});

forall!(cases = 64, fn bus_survives_arbitrary_strobe_noise(
    key in any::<u128>(),
    pt in any::<u128>(),
    noise in vec_of(any::<(bool, u128)>(), 0..40),
) {
    // Arbitrary wr_data writes mid-flight must never corrupt the block
    // being processed (they only replace the *pending* word).
    let mut core = EncryptCore::new();
    core.rising_edge(&CoreInputs { setup: true, wr_key: true, din: key, ..Default::default() });
    core.rising_edge(&CoreInputs { wr_data: true, din: pt, ..Default::default() });
    let mut out = Default::default();
    let mut noise_iter = noise.into_iter();
    for _ in 0..50 {
        let inputs = match noise_iter.next() {
            Some((true, din)) => CoreInputs { wr_data: true, din, ..Default::default() },
            _ => CoreInputs::default(),
        };
        out = core.rising_edge(&inputs);
    }
    assert!(out.data_ok);
    let expect = Aes128::new(&datapath::u128_to_block(key))
        .encrypt_block(&datapath::u128_to_block(pt));
    assert_eq!(datapath::u128_to_block(out.dout), expect);
});

forall!(cases = 64, fn encdec_device_is_an_involution(key in any::<u128>(), pt in any::<u128>()) {
    let key_bytes = datapath::u128_to_block(key);
    let pt_bytes = datapath::u128_to_block(pt);
    let mut drv = IpDriver::new(EncDecCore::new());
    drv.write_key(&key_bytes);
    let ct = drv.try_process_block(&pt_bytes, Direction::Encrypt).unwrap();
    let back = drv.try_process_block(&ct, Direction::Decrypt).unwrap();
    assert_eq!(back, pt_bytes);
});

forall!(cases = 64, fn pkcs7_pad_unpad_roundtrip(
    data in vec_of(any::<u8>(), 0..64),
    block_log in 0usize..=5,
) {
    // Padding then unpadding recovers the original length for every
    // block size a byte can express (1..=32 here).
    let block_len = 1usize << block_log;
    let mut padded = data.clone();
    modes::pkcs7_pad(&mut padded, block_len);
    assert!(padded.len() > data.len(), "padding always adds bytes");
    assert!(padded.len().is_multiple_of(block_len));
    assert_eq!(modes::pkcs7_unpad(&padded, block_len), Some(data.len()));
    assert_eq!(&padded[..data.len()], &data[..]);
});

forall!(cases = 64, fn pkcs7_unpad_never_panics_on_garbage(
    data in vec_of(any::<u8>(), 0..48),
    block_log in 0usize..=5,
) {
    // Unpadding arbitrary bytes (any block size, zero included) must
    // return None or a valid prefix length — never abort.
    let block_len = (1usize << block_log) - usize::from(block_log == 0);
    if let Some(n) = modes::pkcs7_unpad(&data, block_len) {
        let pad = data.len() - n;
        assert!(pad >= 1 && pad <= block_len);
        assert!(data[n..].iter().all(|&b| b as usize == pad));
    }
});

fn sub_all(state: u128) -> u128 {
    let mut s = state;
    for c in 0..4 {
        s = datapath::with_column(s, c, datapath::inv_byte_sub_word(datapath::column(s, c)));
    }
    s
}

#[test]
fn stream_timing_is_deterministic() {
    // Not a property test (it is about exact counts): three runs of the
    // same stream take identical cycle counts.
    let blocks: Vec<[u8; 16]> = (0..5u8).map(|i| [i; 16]).collect();
    let mut counts = Vec::new();
    for _ in 0..3 {
        let mut drv = IpDriver::new(EncryptCore::new());
        drv.write_key(&[1u8; 16]);
        let start = drv.cycles();
        drv.try_process_stream(&blocks, Direction::Encrypt).unwrap();
        counts.push(drv.cycles() - start);
    }
    assert!(counts.windows(2).all(|w| w[0] == w[1]), "{counts:?}");
    // The first write edge + five full latency periods.
    assert_eq!(counts[0], 1 + 5 * EncryptCore::new().latency_cycles());
}

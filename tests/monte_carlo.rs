//! The AESAVS Monte Carlo chain run over the hardware model: thousands of
//! dependent block operations with key feedback, stressing the on-the-fly
//! key schedule's rekeying path far beyond single-vector tests.

use rijndael_ip::aes_ip::bus::HardwareAes;
use rijndael_ip::aes_ip::core::EncryptCore;
use rijndael_ip::rijndael::mct::encrypt_mct;
use rijndael_ip::rijndael::Aes128;

#[test]
fn hardware_survives_a_reduced_monte_carlo_chain() {
    // Reduced AESAVS shape: 6 outer rounds (6 rekeys) x 40 inner
    // encryptions = 240 chained hardware blocks.
    let key = [0x12u8; 16];
    let seed = [0x34u8; 16];

    let software = encrypt_mct(key, seed, 6, 40, Aes128::new);
    let hardware = encrypt_mct(key, seed, 6, 40, |k| {
        HardwareAes::new(EncryptCore::new(), k)
    });

    assert_eq!(software.checkpoints, hardware.checkpoints);
    assert_eq!(software.final_key, hardware.final_key);
}

#[test]
fn full_outer_round_matches_on_one_segment() {
    // One official-size outer round (1000 inner encryptions) to exercise
    // a long single-key chain at full AESAVS length.
    let key = [0u8; 16];
    let seed = [0u8; 16];
    let software = encrypt_mct(key, seed, 1, 1000, Aes128::new);
    let hardware = encrypt_mct(key, seed, 1, 1000, |k| {
        HardwareAes::new(EncryptCore::new(), k)
    });
    assert_eq!(software.checkpoints, hardware.checkpoints);
}

//! Pins the reproduced *shape* of the paper's evaluation: the relations
//! every row of Table 2 satisfies and the orderings the architecture
//! discussion claims. Absolute values are reported in EXPERIMENTS.md; the
//! relations below are what the reproduction guarantees.

use rijndael_ip::aes_ip::alt::AltArch;
use rijndael_ip::aes_ip::alt_netlist::build_alt_netlist;
use rijndael_ip::aes_ip::core::CoreVariant;
use rijndael_ip::aes_ip::netlist_gen::{build_core_netlist, RomStyle};
use rijndael_ip::fpga::device::{EP1C20, EP1K100};
use rijndael_ip::fpga::fit::FitError;
use rijndael_ip::fpga::flow::{synthesize, FlowOptions, SynthesisReport};

fn flow(variant: CoreVariant, cyclone: bool) -> SynthesisReport {
    let (device, style) = if cyclone {
        (&EP1C20, RomStyle::LogicCells)
    } else {
        (&EP1K100, RomStyle::Macro)
    };
    let nl = build_core_netlist(variant, style);
    synthesize(&nl, device, &FlowOptions::default()).expect("paper designs fit")
}

#[test]
fn table2_invariants_acex() {
    let enc = flow(CoreVariant::Encrypt, false);
    let dec = flow(CoreVariant::Decrypt, false);
    let both = flow(CoreVariant::EncDec, false);

    // Memory: 16 Kibit for single-function cores, 32 Kibit combined
    // (exact paper values).
    assert_eq!(enc.fit.memory_bits, 16_384);
    assert_eq!(dec.fit.memory_bits, 16_384);
    assert_eq!(both.fit.memory_bits, 32_768);

    // Pins: 261 / 261 / 262 (exact paper values).
    assert_eq!(enc.fit.pins, 261);
    assert_eq!(dec.fit.pins, 261);
    assert_eq!(both.fit.pins, 262);

    // Area ordering: encrypt < decrypt < both; everything fits the
    // EP1K100 like the paper's fits.
    assert!(enc.fit.logic_cells < dec.fit.logic_cells);
    assert!(dec.fit.logic_cells < both.fit.logic_cells);
    assert!(both.fit.logic_cells <= EP1K100.logic_cells);

    // Speed ordering: encrypt fastest, the combined device slowest —
    // the paper's "performance drops around 22%" observation.
    assert!(enc.clock_ns < dec.clock_ns);
    assert!(dec.clock_ns < both.clock_ns);
    let drop = (both.clock_ns - enc.clock_ns) / both.clock_ns;
    assert!(
        (0.05..0.60).contains(&drop),
        "combined-device slowdown {drop:.2} out of plausible range"
    );

    // Latency = exactly 50 clock periods (every paper row satisfies it).
    for r in [&enc, &dec, &both] {
        assert!((r.latency_ns - 50.0 * r.clock_ns).abs() < 1e-9);
        let tp = 128_000.0 / r.latency_ns;
        assert!((r.throughput_mbps - tp).abs() < 1e-9);
    }
}

#[test]
fn table2_invariants_cyclone() {
    let enc_acex = flow(CoreVariant::Encrypt, false);
    let enc_cyc = flow(CoreVariant::Encrypt, true);

    // Cyclone: no embedded memory usable (async ROM unsupported), S-boxes
    // burn logic cells — the paper's headline observation.
    assert_eq!(enc_cyc.fit.memory_bits, 0);
    assert!(
        enc_cyc.fit.logic_cells > enc_acex.fit.logic_cells + 1000,
        "Cyclone must pay S-boxes in LCs: {} vs {}",
        enc_cyc.fit.logic_cells,
        enc_acex.fit.logic_cells
    );
    // ... but clocks faster (newer family).
    assert!(enc_cyc.clock_ns < enc_acex.clock_ns);
    // Occupation percentage is *lower* on Cyclone (much bigger device),
    // matching 20% vs 42% in the paper.
    assert!(enc_cyc.fit.logic_pct < enc_acex.fit.logic_pct);
}

#[test]
fn cyclone_rejects_asynchronous_rom_macros() {
    // Mapping the EAB-style netlist onto Cyclone must fail with the
    // dedicated diagnostic, mirroring why the paper had to rebuild the
    // memory in LCs.
    let nl = build_core_netlist(CoreVariant::Encrypt, RomStyle::Macro);
    let err = synthesize(&nl, &EP1C20, &FlowOptions::default()).unwrap_err();
    assert!(
        matches!(err, FitError::AsyncRomUnsupported { .. }),
        "got {err}"
    );
}

#[test]
fn architecture_sweep_throughput_ordering() {
    // §4/§6: wider substitution datapath → strictly higher throughput;
    // memory grows with it.
    let mut throughputs = Vec::new();
    let mut memories = Vec::new();
    for arch in AltArch::ALL {
        let nl = if arch == AltArch::Mixed32x128 {
            build_core_netlist(CoreVariant::Encrypt, RomStyle::Macro)
        } else {
            build_alt_netlist(arch, RomStyle::Macro)
        };
        let options = FlowOptions {
            latency_cycles: arch.latency_cycles(),
            ..Default::default()
        };
        let r = synthesize(&nl, &EP1K100, &options).expect("sweep fits");
        throughputs.push(r.throughput_mbps);
        memories.push(r.fit.memory_bits);
    }
    assert!(
        throughputs.windows(2).all(|w| w[0] < w[1]),
        "throughput must increase with datapath width: {throughputs:?}"
    );
    assert!(
        memories.windows(2).all(|w| w[0] <= w[1]),
        "memory must grow with substitution width: {memories:?}"
    );
    // The paper's 12 -> 5 cycles-per-round claim.
    assert_eq!(AltArch::All32.cycles_per_round(), 12);
    assert_eq!(AltArch::Mixed32x128.cycles_per_round(), 5);
}

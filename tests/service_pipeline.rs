//! Pipelined end-to-end exercise of the v2 framed service: many frames
//! in flight per connection completing out of order across a mixed
//! multi-core farm, verified block-by-block against SP 800-38A KATs;
//! per-job typed failures that do not poison the connection; deferred
//! and pipelined lanes coexisting on one socket; and a version-1
//! single-in-flight client speaking to the same v2 server.

use std::collections::HashMap;
use std::time::Duration;

use rijndael_ip::engine::BackendSpec;
use rijndael_ip::service::client::{Client, SubmitOutcome};
use rijndael_ip::service::protocol::{ErrorCode, Op, PROTOCOL_V1};
use rijndael_ip::service::server::{Server, ServiceConfig};

fn hex(s: &str) -> Vec<u8> {
    let s: String = s.chars().filter(|c| !c.is_whitespace()).collect();
    (0..s.len())
        .step_by(2)
        .map(|i| u8::from_str_radix(&s[i..i + 2], 16).expect("hex"))
        .collect()
}

fn hex16(s: &str) -> [u8; 16] {
    hex(s).try_into().expect("16 bytes")
}

// SP 800-38A, AES-128 (Appendix F): one key, four-block test stream.
const SP800_KEY: &str = "2b7e151628aed2a6abf7158809cf4f3c";
const SP800_PT: &str = "6bc1bee22e409f96e93d7e117393172a\
                        ae2d8a571e03ac9c9eb76fac45af8e51\
                        30c81c46a35ce411e5fbc1191a0a52ef\
                        f69f2445df4f9b17ad2b417be66c3710";
const SP800_ECB_CT: &str = "3ad77bb40d7a3660a89ecaf32466ef97\
                            f5d3d58503b9699de785895a96fdbaaf\
                            43b1cd7f598ece23881b00e3ed030688\
                            7b0c785e27e8ad3f8223207104725dd4";
const SP800_CBC_IV: &str = "000102030405060708090a0b0c0d0e0f";
const SP800_CBC_CT: &str = "7649abac8119b246cee98e9b12e9197d\
                            5086cb9b507219ee95db113a917678b2\
                            73bed6b8e3c1743b7116e69e22229516\
                            3ff1caa1681fac09120eca307586e1a7";
const SP800_CTR_ICB: &str = "f0f1f2f3f4f5f6f7f8f9fafbfcfdfeff";
const SP800_CTR_CT: &str = "874d6191b620e3261bef6864990db6ce\
                            9806f66b7970fdff8617187bb9fffdff\
                            5ae4df3edbd5d35e5b4f09020db03eab\
                            1e031dda2fbe03d1792170a0f3009cee";
// RFC 4493 example 2 (same key, first SP 800-38A block).
const CMAC_TAG_1BLOCK: &str = "070a16b46b4d4144f79bdd9dd04a287c";

fn spawn_server(farm: Vec<BackendSpec>, queue: usize) -> rijndael_ip::service::ServiceHandle {
    Server::new(
        ServiceConfig::builder()
            .farm(&farm)
            .queue_capacity(queue)
            .max_connections(16)
            .idle_timeout(Duration::from_secs(10))
            .event_threads(2)
            .build()
            .expect("valid test config"),
    )
    .spawn("127.0.0.1:0")
    .expect("bind ephemeral port")
}

/// Thirty-two single-block ECB jobs in flight on one connection —
/// depth 32, well past the acceptance floor of 16 — across a mixed
/// farm whose cores finish at different speeds, so completion order is
/// the engine's, not the submission's. Every completion must land on
/// its own correlation id and match the published ciphertext block.
#[test]
fn depth_32_pipelined_blocks_correlate_against_kats() {
    let server = spawn_server(
        vec![
            BackendSpec::EncDecCore,
            BackendSpec::Software,
            BackendSpec::Ttable,
            BackendSpec::EncDecCore,
        ],
        64,
    );
    let mut client = Client::connect(server.local_addr()).expect("connect");
    client.set_key(&hex16(SP800_KEY)).expect("SET_KEY");

    let pt = hex(SP800_PT);
    let ct = hex(SP800_ECB_CT);
    let mut expected: HashMap<u32, &[u8]> = HashMap::new();
    for round in 0..8 {
        for block in 0..4 {
            let corr = client
                .pipeline(Op::EcbEncrypt, None, &pt[block * 16..block * 16 + 16])
                .expect("pipeline");
            expected.insert(corr, &ct[block * 16..block * 16 + 16]);
            let _ = round;
        }
    }
    assert_eq!(client.in_flight(), 32, "all 32 frames in flight at once");

    let jobs = client.collect_all().expect("collect");
    assert_eq!(jobs.len(), 32);
    for job in jobs {
        let want = expected.remove(&job.corr).expect("known correlation id");
        assert_eq!(
            job.result.expect("job ok"),
            want,
            "corr {} must carry its own block's ciphertext",
            job.corr
        );
    }
    assert!(
        expected.is_empty(),
        "every submission answered exactly once"
    );
    server.shutdown();
}

/// A malformed job in the middle of a pipelined burst fails alone: the
/// ragged frame gets a typed per-job error, its neighbours complete,
/// and the connection stays good for blocking calls afterwards.
#[test]
fn pipelined_failures_are_per_job_not_connection_fatal() {
    let server = spawn_server(vec![BackendSpec::Software; 2], 16);
    let mut client = Client::connect(server.local_addr()).expect("connect");
    client.set_key(&hex16(SP800_KEY)).expect("SET_KEY");

    let pt = hex(SP800_PT);
    let good_a = client.pipeline(Op::EcbEncrypt, None, &pt[..16]).expect("a");
    let ragged = client
        .pipeline(Op::EcbEncrypt, None, &pt[..17])
        .expect("ragged send");
    let good_b = client.pipeline(Op::EcbEncrypt, None, &pt[..16]).expect("b");

    let jobs = client.collect_all().expect("collect");
    assert_eq!(jobs.len(), 3);
    for job in jobs {
        if job.corr == ragged {
            assert_eq!(job.result, Err((ErrorCode::RaggedLength, 17)));
        } else {
            assert!(job.corr == good_a || job.corr == good_b);
            assert_eq!(job.result.expect("good job"), hex(SP800_ECB_CT)[..16]);
        }
    }
    // The connection survived the bad job.
    assert_eq!(client.ping(b"still here").expect("ping"), b"still here");
    server.shutdown();
}

/// The deferred (submit/flush) and pipelined (pipeline/collect) lanes
/// share one connection and one engine queue without crosstalk: each
/// lane's results come back on its own path, tagged with its own ids.
#[test]
fn deferred_and_pipelined_lanes_coexist_on_one_connection() {
    let server = spawn_server(vec![BackendSpec::Software; 2], 16);
    let mut client = Client::connect(server.local_addr()).expect("connect");
    client.set_key(&hex16(SP800_KEY)).expect("SET_KEY");

    let pt = hex(SP800_PT);
    let ct = hex(SP800_ECB_CT);

    let deferred = match client
        .try_submit(Op::EcbEncrypt, None, &pt[16..32])
        .expect("defer")
    {
        SubmitOutcome::Accepted(tag) => tag,
        SubmitOutcome::Busy { .. } => panic!("empty queue refused a job"),
    };
    let piped = client
        .pipeline(Op::EcbEncrypt, None, &pt[..16])
        .expect("pipe");

    let jobs = client.collect_all().expect("collect pipelined");
    assert_eq!(jobs.len(), 1, "only the pipelined job on this lane");
    assert_eq!(jobs[0].corr, piped);
    assert_eq!(jobs[0].result.as_deref().expect("piped ok"), &ct[..16]);

    let flushed = client.flush().expect("flush deferred");
    assert_eq!(flushed.len(), 1, "only the deferred job on this lane");
    assert_eq!(flushed[0].seq, deferred);
    assert_eq!(
        flushed[0].result.as_deref().expect("deferred ok"),
        &ct[16..32]
    );
    server.shutdown();
}

/// A version-1 client — 11-byte headers, one request in flight,
/// replies strictly in order — runs its entire KAT conversation
/// against the v2 server unchanged, and every reply it sees is in the
/// v1 layout.
#[test]
fn v1_client_roundtrips_kats_against_the_v2_server() {
    let server = spawn_server(vec![BackendSpec::EncDecCore, BackendSpec::Software], 8);
    let mut client = Client::connect_v1(server.local_addr()).expect("connect v1");
    assert_eq!(client.version(), PROTOCOL_V1);

    let session = client.set_key(&hex16(SP800_KEY)).expect("SET_KEY");
    assert_ne!(session, 0);

    let pt = hex(SP800_PT);
    let ct = client.ecb_encrypt(&pt).expect("ECB encrypt");
    assert_eq!(ct, hex(SP800_ECB_CT), "SP 800-38A F.1.1");
    assert_eq!(client.ecb_decrypt(&ct).expect("ECB decrypt"), pt);

    let cbc = client
        .cbc_encrypt(&hex16(SP800_CBC_IV), &pt)
        .expect("CBC encrypt");
    assert_eq!(cbc, hex(SP800_CBC_CT), "SP 800-38A F.2.1");

    let ctr = client
        .ctr_apply(&hex16(SP800_CTR_ICB), &pt)
        .expect("CTR apply");
    assert_eq!(ctr, hex(SP800_CTR_CT), "SP 800-38A F.5.1");

    let tag = client.cmac_tag(&pt[..16]).expect("CMAC tag");
    assert_eq!(tag.to_vec(), hex(CMAC_TAG_1BLOCK), "RFC 4493 example 2");
    assert!(client.cmac_verify(&pt[..16], &tag).expect("CMAC verify"));

    // The deferred lane works over v1 framing too.
    match client
        .try_submit(Op::EcbEncrypt, None, &pt[..16])
        .expect("defer")
    {
        SubmitOutcome::Accepted(_) => {}
        SubmitOutcome::Busy { .. } => panic!("empty queue refused a job"),
    }
    let flushed = client.flush().expect("flush");
    assert_eq!(flushed.len(), 1);
    assert_eq!(
        flushed[0].result.as_deref().expect("deferred ok"),
        &hex(SP800_ECB_CT)[..16]
    );
    server.shutdown();
}

/// Two connections pipelining concurrently: a v2 client with a deep
/// burst and a v1 client doing blocking calls share the server without
/// interfering — sessions, correlation ids, and replies stay per-
/// connection.
#[test]
fn mixed_version_clients_share_the_server() {
    let server = spawn_server(vec![BackendSpec::Software; 2], 32);
    let addr = server.local_addr();

    let v2 = std::thread::spawn(move || {
        let mut client = Client::connect(addr).expect("connect v2");
        client.set_key(&hex16(SP800_KEY)).expect("SET_KEY");
        let pt = hex(SP800_PT);
        let ct = hex(SP800_ECB_CT);
        for _ in 0..4 {
            let mut expected = HashMap::new();
            for block in 0..4 {
                let corr = client
                    .pipeline(Op::EcbEncrypt, None, &pt[block * 16..block * 16 + 16])
                    .expect("pipeline");
                expected.insert(corr, ct[block * 16..block * 16 + 16].to_vec());
            }
            for job in client.collect_all().expect("collect") {
                assert_eq!(job.result.expect("ok"), expected.remove(&job.corr).unwrap());
            }
        }
    });

    let mut v1 = Client::connect_v1(addr).expect("connect v1");
    v1.set_key(&hex16(SP800_KEY)).expect("SET_KEY");
    let pt = hex(SP800_PT);
    for _ in 0..8 {
        assert_eq!(
            v1.ecb_encrypt(&pt[..16]).expect("ECB"),
            hex(SP800_ECB_CT)[..16]
        );
    }

    v2.join().expect("v2 client thread");
    server.shutdown();
}
